package sim

import (
	"reflect"
	"testing"
)

// TestProcHeapTieBreaks pins the heap ordering both phase-1 shard queues
// and the commit queue use: (clock, id), id breaking every virtual-time
// tie. Pop order must be independent of push order.
func TestProcHeapTieBreaks(t *testing.T) {
	type pr struct {
		id  int
		now Time
	}
	cases := []struct {
		name string
		push []pr
		want []int // pop order by id
	}{
		{
			name: "distinct clocks order by clock",
			push: []pr{{0, 30}, {1, 10}, {2, 20}},
			want: []int{1, 2, 0},
		},
		{
			name: "equal clocks order by id",
			push: []pr{{3, 10}, {1, 10}, {2, 10}, {0, 10}},
			want: []int{0, 1, 2, 3},
		},
		{
			name: "clock beats id",
			push: []pr{{0, 20}, {3, 10}},
			want: []int{3, 0},
		},
		{
			name: "mixed ties",
			push: []pr{{5, 10}, {2, 20}, {4, 10}, {1, 20}, {3, 10}},
			want: []int{3, 4, 5, 1, 2},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var h procHeap
			for _, e := range c.push {
				h.push(&Proc{id: e.id, now: e.now, heapIndex: -1})
			}
			var got []int
			for len(h) > 0 {
				got = append(got, h.pop().id)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("pop order = %v, want %v", got, c.want)
			}
		})
	}
}

// TestSchedulerTieBreakTable pins the engine's documented tie-break rules
// end to end: each case runs a small scripted workload with one host worker
// (the schedule is identical at any worker count) and asserts the exact
// order of its commit-phase marks.
func TestSchedulerTieBreakTable(t *testing.T) {
	cases := []struct {
		name    string
		procs   int
		shardOf []int
		quantum Time
		body    func(e *Engine, p *Proc, mark func(string))
		want    []string
	}{
		{
			// Commit order is (suspend time, id): lower clocks first,
			// equal clocks resolved by id regardless of shard or of the
			// order the shards staged their arrivals.
			name:    "commit order by suspend time then id",
			procs:   4,
			shardOf: []int{0, 0, 1, 1},
			quantum: Microsecond,
			body: func(e *Engine, p *Proc, mark func(string)) {
				adv := []Time{30, 10, 10, 20}
				p.Advance(adv[p.ID()]*Nanosecond, StatBusy)
				p.AwaitGlobal()
				mark("commit")
				p.EndGlobal()
			},
			want: []string{"commit:1", "commit:2", "commit:3", "commit:0"},
		},
		{
			// Fast path, yielding side: a committing processor whose
			// (clock, id) is not strictly least re-queues itself behind
			// the queued commit that ties its clock with a lower id.
			name:    "fast path yields to equal clock lower id",
			procs:   2,
			shardOf: []int{0, 1},
			quantum: Microsecond,
			body: func(e *Engine, p *Proc, mark func(string)) {
				if p.ID() == 1 {
					p.Advance(10*Nanosecond, StatBusy)
					p.AwaitGlobal()
					mark("A")
					p.Advance(10*Nanosecond, StatBusy) // clock now ties p0's
					p.AwaitGlobal()
					mark("B")
					p.EndGlobal()
					p.EndGlobal()
					return
				}
				p.Advance(20*Nanosecond, StatBusy)
				p.AwaitGlobal()
				mark("A")
				p.EndGlobal()
			},
			want: []string{"A:1", "A:0", "B:1"},
		},
		{
			// Fast path, continuing side: with the ids reversed the
			// committing processor is strictly (clock, id)-less than the
			// queued commit and keeps executing without a handoff.
			name:    "fast path continues on equal clock higher queued id",
			procs:   2,
			shardOf: []int{0, 1},
			quantum: Microsecond,
			body: func(e *Engine, p *Proc, mark func(string)) {
				if p.ID() == 0 {
					p.Advance(10*Nanosecond, StatBusy)
					p.AwaitGlobal()
					mark("A")
					p.Advance(10*Nanosecond, StatBusy)
					p.AwaitGlobal()
					mark("B")
					p.EndGlobal()
					p.EndGlobal()
					return
				}
				p.Advance(20*Nanosecond, StatBusy)
				p.AwaitGlobal()
				mark("A")
				p.EndGlobal()
			},
			want: []string{"A:0", "B:0", "A:1"},
		},
		{
			// Wakes to the same virtual instant resume in id order.
			name:    "equal-time wakes resume by id",
			procs:   3,
			shardOf: []int{0, 0, 0},
			quantum: Microsecond,
			body: func(e *Engine, p *Proc, mark func(string)) {
				if p.ID() == 2 {
					p.Advance(50*Nanosecond, StatBusy)
					p.AwaitGlobal()
					p.Wake(e.Proc(1), 100*Nanosecond)
					p.Wake(e.Proc(0), 100*Nanosecond)
					mark("waker")
					p.EndGlobal()
					return
				}
				p.Block()
				mark("woke")
			},
			want: []string{"waker:2", "woke:0", "woke:1"},
		},
		{
			// A global section spanning several window edges stays on the
			// serial commit chain: the two sections interleave only at
			// yield points (window-edge advances), exactly like the
			// cooperative serial schedule, and never run concurrently.
			// Before the carryover fix a section crossing a window edge
			// resumed on its shard's phase-1 chain and raced.
			name:    "sections span window edges on the commit chain",
			procs:   2,
			shardOf: []int{0, 1},
			quantum: 100 * Nanosecond,
			body: func(e *Engine, p *Proc, mark func(string)) {
				p.AwaitGlobal()
				mark("begin")
				for i := 0; i < 5; i++ {
					p.Advance(60*Nanosecond, StatBusy)
				}
				mark("end")
				p.EndGlobal()
			},
			want: []string{"begin:0", "begin:1", "end:0", "end:1"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := NewEngine(c.procs, c.quantum)
			e.SetShards(c.shardOf, maxShard(c.shardOf)+1)
			e.SetWorkers(2) // marks happen in sections, so logging is serialized
			var order []string
			if err := e.Run(func(p *Proc) {
				c.body(e, p, func(s string) {
					order = append(order, s+":"+string(rune('0'+p.ID())))
				})
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(order, c.want) {
				t.Errorf("mark order = %v, want %v", order, c.want)
			}
		})
	}
}

func maxShard(shardOf []int) int {
	m := 0
	for _, s := range shardOf {
		if s > m {
			m = s
		}
	}
	return m
}
