package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// The originckpt/v1 container is deliberately dumb: a fixed magic, a format
// version, then a flat list of named sections, each a CRC-guarded JSON
// payload, closed by an end marker. Corruption anywhere yields a
// FormatError naming the section, never a panic, and unknown sections are
// rejected rather than skipped so a v2 writer cannot be half-read by a v1
// reader.
//
//	offset  size  field
//	0       8     magic "ORGNCKP1"
//	8       4     u32 format version (little-endian)
//	12      ...   sections:
//	                u32 name length (0 terminates the file)
//	                name bytes
//	                u32 payload length
//	                u32 CRC-32 (IEEE) of the payload
//	                payload (deterministic JSON)
//
// Section order on encode is fixed (header first, observers last, nil
// observers skipped); decode accepts any order but requires the header and
// rejects duplicates.
const magic = "ORGNCKP1"

// Section names, in canonical encode order.
const (
	secHeader      = "header"
	secEngine      = "engine"
	secProcs       = "procs"
	secCaches      = "caches"
	secDirectories = "directories"
	secMemPolicy   = "mempolicy"
	secResources   = "resources"
	secMemory      = "memory"
	secSyncs       = "syncs"
	secChecker     = "checker"
	secTracer      = "tracer"
	secMetrics     = "metrics"
	secSharing     = "sharing"
)

const (
	maxNameLen    = 64
	maxPayloadLen = 1 << 30
)

type section struct {
	name string
	val  any
}

func (s *Snapshot) sections() []section {
	out := []section{
		{secHeader, &s.Header},
		{secEngine, &s.Engine},
		{secProcs, &s.Procs},
		{secCaches, &s.Caches},
		{secDirectories, &s.Directories},
		{secMemPolicy, &s.MemPolicy},
		{secResources, &s.Resources},
		{secMemory, &s.Memory},
		{secSyncs, &s.Syncs},
	}
	if s.Checker != nil {
		out = append(out, section{secChecker, s.Checker})
	}
	if s.Tracer != nil {
		out = append(out, section{secTracer, s.Tracer})
	}
	if s.Metrics != nil {
		out = append(out, section{secMetrics, s.Metrics})
	}
	if s.Sharing != nil {
		out = append(out, section{secSharing, s.Sharing})
	}
	return out
}

// Encode serializes the snapshot into the originckpt/v1 byte format.
// Payloads are Go's canonical JSON (struct order fixed, map keys sorted),
// so the same state always encodes to the same bytes.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeU32(&buf, Version)
	for _, sec := range s.sections() {
		payload, err := json.Marshal(sec.val)
		if err != nil {
			return nil, &FormatError{sec.name, "encode: " + err.Error()}
		}
		writeU32(&buf, uint32(len(sec.name)))
		buf.WriteString(sec.name)
		writeU32(&buf, uint32(len(payload)))
		writeU32(&buf, crc32.ChecksumIEEE(payload))
		buf.Write(payload)
	}
	writeU32(&buf, 0) // end marker
	return buf.Bytes(), nil
}

// WriteFile encodes the snapshot and writes it to path.
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Decode parses an originckpt/v1 byte stream. Every malformation —
// truncation, bad magic, CRC mismatch, duplicate or unknown section,
// payload that fails to parse — returns a FormatError naming the section
// it was found in.
func Decode(data []byte) (*Snapshot, error) {
	r := &reader{data: data}
	var hdr [len(magic)]byte
	if err := r.read(hdr[:], "", "magic"); err != nil {
		return nil, err
	}
	if string(hdr[:]) != magic {
		return nil, &FormatError{"", fmt.Sprintf("bad magic %q, not an originckpt file", hdr[:])}
	}
	ver, err := r.u32("", "version")
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, &FormatError{"", fmt.Sprintf("format version %d, this build reads %d", ver, Version)}
	}
	s := &Snapshot{}
	targets := map[string]any{
		secHeader:      &s.Header,
		secEngine:      &s.Engine,
		secProcs:       &s.Procs,
		secCaches:      &s.Caches,
		secDirectories: &s.Directories,
		secMemPolicy:   &s.MemPolicy,
		secResources:   &s.Resources,
		secMemory:      &s.Memory,
		secSyncs:       &s.Syncs,
		secChecker:     &s.Checker,
		secTracer:      &s.Tracer,
		secMetrics:     &s.Metrics,
		secSharing:     &s.Sharing,
	}
	seen := map[string]bool{}
	for {
		nameLen, err := r.u32("", "section name length")
		if err != nil {
			return nil, err
		}
		if nameLen == 0 {
			break
		}
		if nameLen > maxNameLen {
			return nil, &FormatError{"", fmt.Sprintf("section name length %d exceeds limit %d", nameLen, maxNameLen)}
		}
		nameBuf, err := r.slice(int(nameLen), "", "section name")
		if err != nil {
			return nil, err
		}
		name := string(nameBuf)
		target, known := targets[name]
		if !known {
			return nil, &FormatError{name, "unknown section"}
		}
		if seen[name] {
			return nil, &FormatError{name, "duplicate section"}
		}
		seen[name] = true
		payloadLen, err := r.u32(name, "payload length")
		if err != nil {
			return nil, err
		}
		if payloadLen > maxPayloadLen {
			return nil, &FormatError{name, fmt.Sprintf("payload length %d exceeds limit %d", payloadLen, maxPayloadLen)}
		}
		want, err := r.u32(name, "checksum")
		if err != nil {
			return nil, err
		}
		payload, err := r.slice(int(payloadLen), name, "payload")
		if err != nil {
			return nil, err
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, &FormatError{name, fmt.Sprintf("checksum mismatch: stored %08x, computed %08x", want, got)}
		}
		if err := json.Unmarshal(payload, target); err != nil {
			return nil, &FormatError{name, "payload does not parse: " + err.Error()}
		}
	}
	if r.off != len(r.data) {
		return nil, &FormatError{"", fmt.Sprintf("%d trailing bytes after end marker", len(r.data)-r.off)}
	}
	if !seen[secHeader] {
		return nil, &FormatError{secHeader, "missing"}
	}
	return s, nil
}

// ReadFile reads and decodes an originckpt/v1 file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

type reader struct {
	data []byte
	off  int
}

// slice returns the next n bytes without copying, so a corrupted length
// field can never force a large allocation: the bytes must already exist.
func (r *reader) slice(n int, sec, what string) ([]byte, error) {
	if len(r.data)-r.off < n {
		return nil, &FormatError{sec, fmt.Sprintf("truncated reading %s: need %d bytes, have %d",
			what, n, len(r.data)-r.off)}
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) read(dst []byte, sec, what string) error {
	if len(r.data)-r.off < len(dst) {
		return &FormatError{sec, fmt.Sprintf("truncated reading %s: need %d bytes, have %d",
			what, len(dst), len(r.data)-r.off)}
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
	return nil
}

func (r *reader) u32(sec, what string) (uint32, error) {
	var b [4]byte
	if err := r.read(b[:], sec, what); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}
