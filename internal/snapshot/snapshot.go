// Package snapshot defines the originckpt/v1 checkpoint format: a full
// serialization of the simulated machine's state at a quiescent scheduling
// point (a round boundary with no open global section), plus the state of
// whichever observers — checker, tracer, metrics sampler — the run had
// enabled.
//
// Goroutine stacks cannot be serialized, so "restore" is replay-based: a
// resumed run rebuilds the machine from the recorded configuration,
// deterministically re-executes the prefix with observers muted, proves at
// the recorded quiescent point that the re-captured simulation state equals
// the snapshot byte for byte, then restores the observer state and unmutes.
// The simulation sections therefore serve as proof obligations; only the
// observer sections are ever written back into live objects. See
// DESIGN.md §13.
package snapshot

import (
	"encoding/json"
	"fmt"
	"sort"

	"origin2000/internal/cache"
	"origin2000/internal/check"
	"origin2000/internal/directory"
	"origin2000/internal/mempolicy"
	"origin2000/internal/metrics"
	"origin2000/internal/sharing"
	"origin2000/internal/sim"
	"origin2000/internal/trace"
)

// Version is the format version this package reads and writes.
const Version = 1

// RunSpec identifies the program whose execution a snapshot belongs to, in
// the vocabulary of the experiments layer: enough for a driver to rebuild
// the identical run (the rest of the machine shape lives in Header.Config).
type RunSpec struct {
	App      string `json:"app,omitempty"`
	Size     int    `json:"size,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Prefetch bool   `json:"prefetch,omitempty"`
	Div      int    `json:"div,omitempty"`
	CacheDiv int    `json:"cache_div,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Lock and Barrier record the synchronization-algorithm selections
	// (synchro.LockAlgorithm / synchro.BarrierAlgorithm as integers), so
	// the spec suffices to rebuild the run's workload.Params.
	Lock    int `json:"lock,omitempty"`
	Barrier int `json:"barrier,omitempty"`
	// Scenario and ScenarioHash identify the machine the run executed on
	// (scenario.Spec name and content hash). The capturing machine stamps
	// the hash when the driver left it empty; resume refuses a snapshot
	// whose hash differs from the requested machine's. Empty means the
	// default scenario — headers written before scenarios existed stay
	// valid and are treated as the default machine's hash.
	Scenario     string `json:"scenario,omitempty"`
	ScenarioHash string `json:"scenario_hash,omitempty"`
}

// Header is the snapshot's self-describing first section.
type Header struct {
	Version int    `json:"version"`
	Procs   int    `json:"procs"`
	Engine  string `json:"engine,omitempty"`
	// Workers is the effective host-worker count the capturing run used.
	Workers int `json:"workers,omitempty"`
	// WorkersForced records that the checker or the metrics sampler forced
	// the engine to one worker (their observer hooks read cross-shard state
	// at event time). A resume of such a run must not request more workers.
	WorkersForced bool `json:"workers_forced,omitempty"`
	// QuiesSeq is the engine's round-open counter at the capture point; the
	// schedule is deterministic, so a replay reaches the same state exactly
	// when its counter reaches this value.
	QuiesSeq int64 `json:"quies_seq"`
	// VirtualTime is the smallest runnable processor clock at the capture
	// point (the opening round's horizon).
	VirtualTime sim.Time `json:"virtual_time"`
	Spec        RunSpec  `json:"spec"`
	// Config is the capturing machine's full core.Config, verbatim.
	Config json.RawMessage `json:"config,omitempty"`
}

// Breakdown mirrors perf.Breakdown with stable JSON tags.
type Breakdown struct {
	Busy   sim.Time `json:"busy"`
	Memory sim.Time `json:"memory"`
	Sync   sim.Time `json:"sync"`
}

// PrefetchEntry is one in-flight prefetch in a ProcSnap.
type PrefetchEntry struct {
	Block uint64   `json:"block"`
	Ready sim.Time `json:"ready"`
}

// PhaseTotal is one accumulated phase-attribution bucket in a ProcSnap.
type PhaseTotal struct {
	Name string `json:"name"`
	Breakdown
}

// ProcSnap is the machine-level state of one processor: outstanding
// prefetches (block-sorted map plus issue-order FIFO) and phase-attribution
// state. The scheduler-level per-processor state (clock, counters, shard)
// lives in the engine section.
type ProcSnap struct {
	Prefetch  []PrefetchEntry `json:"prefetch,omitempty"`
	PrefetchQ []uint64        `json:"prefetch_q,omitempty"`
	Phase     string          `json:"phase,omitempty"`
	PhaseMark Breakdown       `json:"phase_mark"`
	PhaseAcc  []PhaseTotal    `json:"phase_acc,omitempty"`
}

// ResourcesSnap bundles every shared-resource timeline.
type ResourcesSnap struct {
	Hubs    []sim.ResourceSnap `json:"hubs"`
	Mems    []sim.ResourceSnap `json:"mems"`
	Routers []sim.ResourceSnap `json:"routers"`
	Metas   []sim.ResourceSnap `json:"metas,omitempty"`
}

// MemorySnap is the machine's allocation state.
type MemorySnap struct {
	NextAddr  uint64 `json:"next_addr"`
	NodePages []int  `json:"node_pages"`
}

// SyncRecord is the serialized host state of one synchronization primitive,
// keyed by the primitive's identifying simulated address and kind label.
// Registration order is deterministic (primitives are constructed by
// deterministic program code), so the slice order is too.
type SyncRecord struct {
	Base  uint64          `json:"base"`
	Kind  string          `json:"kind"`
	State json.RawMessage `json:"state"`
}

// Snapshot is one decoded originckpt/v1 checkpoint. Observer sections are
// nil when the capturing run had them disabled.
type Snapshot struct {
	Header      Header
	Engine      sim.EngineSnap
	Procs       []ProcSnap
	Caches      []cache.Snap
	Directories []directory.Snap
	MemPolicy   mempolicy.TableSnap
	Resources   ResourcesSnap
	Memory      MemorySnap
	Syncs       []SyncRecord
	Checker     *check.Snap
	Tracer      *trace.Snap
	Metrics     *metrics.Snap
	Sharing     *sharing.Snap
}

// FormatError reports a malformed or corrupted checkpoint, naming the
// section the problem was found in.
type FormatError struct {
	Section string
	Msg     string
}

func (e *FormatError) Error() string {
	if e.Section == "" {
		return "snapshot: " + e.Msg
	}
	return fmt.Sprintf("snapshot: section %q: %s", e.Section, e.Msg)
}

// DivergenceError reports that a replayed run's re-captured state did not
// match the snapshot it was resuming from — the resume-equivalence proof
// failed. It is raised as a panic from the engine's quiescent hook and
// recovered by the resume driver.
type DivergenceError struct {
	// Section is the first snapshot section whose bytes differed.
	Section string
	// Seq is the quiescent point the proof ran at.
	Seq int64
	// At is the virtual time of that point.
	At sim.Time
	// Msg carries additional context.
	Msg string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("snapshot: resume diverged at quiescent point %d (t=%v): section %q: %s",
		e.Seq, e.At, e.Section, e.Msg)
}

// simSections returns the simulation-state sections (name, value) in
// canonical order. These are the proof obligations of a resume; the header
// and observer sections are handled separately.
func (s *Snapshot) simSections() []struct {
	name string
	val  any
} {
	return []struct {
		name string
		val  any
	}{
		{secEngine, s.Engine},
		{secProcs, s.Procs},
		{secCaches, s.Caches},
		{secDirectories, s.Directories},
		{secMemPolicy, s.MemPolicy},
		{secResources, s.Resources},
		{secMemory, s.Memory},
		{secSyncs, s.Syncs},
	}
}

// ProveEqual byte-compares the simulation sections of live and recorded,
// returning the name of the first differing section, or ok=true when every
// section matches. Both sides are re-marshaled, so slice identity and
// backing arrays never matter, only content.
func ProveEqual(live, recorded *Snapshot) (section string, ok bool) {
	ls, rs := live.simSections(), recorded.simSections()
	for i := range ls {
		lb, err := json.Marshal(ls[i].val)
		if err != nil {
			return ls[i].name, false
		}
		rb, err := json.Marshal(rs[i].val)
		if err != nil {
			return rs[i].name, false
		}
		if string(lb) != string(rb) {
			return ls[i].name, false
		}
	}
	return "", true
}

// Diff byte-compares every section of two snapshots — header, simulation
// state, and observers — returning the name of the first differing section,
// or ok=true when the snapshots are equivalent.
func Diff(a, b *Snapshot) (section string, ok bool) {
	pairs := []struct {
		name string
		av   any
		bv   any
	}{
		{secHeader, a.Header, b.Header},
		{secChecker, a.Checker, b.Checker},
		{secTracer, a.Tracer, b.Tracer},
		{secMetrics, a.Metrics, b.Metrics},
		{secSharing, a.Sharing, b.Sharing},
	}
	as, bs := a.simSections(), b.simSections()
	for i := range as {
		pairs = append(pairs, struct {
			name string
			av   any
			bv   any
		}{as[i].name, as[i].val, bs[i].val})
	}
	for _, p := range pairs {
		ab, err := json.Marshal(p.av)
		if err != nil {
			return p.name, false
		}
		bb, err := json.Marshal(p.bv)
		if err != nil {
			return p.name, false
		}
		if string(ab) != string(bb) {
			return p.name, false
		}
	}
	return "", true
}

// Validate structurally checks a decoded snapshot: version, cross-section
// processor counts, and per-section shape invariants. It returns a
// FormatError naming the offending section.
func (s *Snapshot) Validate() error {
	h := &s.Header
	if h.Version != Version {
		return &FormatError{secHeader, fmt.Sprintf("version %d, want %d", h.Version, Version)}
	}
	if h.Procs <= 0 {
		return &FormatError{secHeader, fmt.Sprintf("non-positive processor count %d", h.Procs)}
	}
	if h.QuiesSeq <= 0 {
		return &FormatError{secHeader, fmt.Sprintf("non-positive quiescent sequence %d", h.QuiesSeq)}
	}
	if len(s.Engine.Procs) != h.Procs {
		return &FormatError{secEngine, fmt.Sprintf("%d processors, header says %d", len(s.Engine.Procs), h.Procs)}
	}
	for i, p := range s.Engine.Procs {
		if p.ID != i {
			return &FormatError{secEngine, fmt.Sprintf("processor %d records id %d", i, p.ID)}
		}
	}
	if len(s.Procs) != h.Procs {
		return &FormatError{secProcs, fmt.Sprintf("%d processors, header says %d", len(s.Procs), h.Procs)}
	}
	for i := range s.Procs {
		for j := 1; j < len(s.Procs[i].Prefetch); j++ {
			if s.Procs[i].Prefetch[j].Block <= s.Procs[i].Prefetch[j-1].Block {
				return &FormatError{secProcs, fmt.Sprintf("processor %d prefetch set not block-sorted", i)}
			}
		}
	}
	if len(s.Caches) != h.Procs {
		return &FormatError{secCaches, fmt.Sprintf("%d caches, header says %d processors", len(s.Caches), h.Procs)}
	}
	for i, c := range s.Caches {
		n := c.Sets * c.Assoc
		if c.Sets <= 0 || c.Assoc <= 0 || len(c.Tags) != n || len(c.State) != n || len(c.Age) != n {
			return &FormatError{secCaches, fmt.Sprintf("cache %d geometry %dx%d does not match its arrays", i, c.Sets, c.Assoc)}
		}
	}
	for d, ds := range s.Directories {
		for j := 1; j < len(ds.Blocks); j++ {
			if ds.Blocks[j].Block <= ds.Blocks[j-1].Block {
				return &FormatError{secDirectories, fmt.Sprintf("directory %d blocks not sorted", d)}
			}
		}
	}
	for j := 1; j < len(s.MemPolicy.Homes); j++ {
		if s.MemPolicy.Homes[j].Page <= s.MemPolicy.Homes[j-1].Page {
			return &FormatError{secMemPolicy, "page homes not sorted"}
		}
	}
	if len(s.Resources.Hubs) != len(s.Resources.Mems) {
		return &FormatError{secResources, fmt.Sprintf("%d hubs but %d memories", len(s.Resources.Hubs), len(s.Resources.Mems))}
	}
	if len(s.Memory.NodePages) != len(s.Resources.Hubs) {
		return &FormatError{secMemory, fmt.Sprintf("%d node page counts, %d nodes", len(s.Memory.NodePages), len(s.Resources.Hubs))}
	}
	if s.Checker != nil && len(s.Checker.Clocks) != h.Procs {
		return &FormatError{secChecker, fmt.Sprintf("%d clocks, header says %d processors", len(s.Checker.Clocks), h.Procs)}
	}
	if s.Metrics != nil && len(s.Metrics.PerProc) != h.Procs {
		return &FormatError{secMetrics, fmt.Sprintf("%d per-processor series, header says %d processors", len(s.Metrics.PerProc), h.Procs)}
	}
	if s.Sharing != nil {
		if s.Sharing.Procs != h.Procs {
			return &FormatError{secSharing, fmt.Sprintf("%d processors, header says %d", s.Sharing.Procs, h.Procs)}
		}
		if len(s.Sharing.NodeRemote) != s.Sharing.Nodes {
			return &FormatError{secSharing, fmt.Sprintf("%d node counters, section says %d nodes", len(s.Sharing.NodeRemote), s.Sharing.Nodes)}
		}
		for j := 1; j < len(s.Sharing.Blocks); j++ {
			if s.Sharing.Blocks[j].Block <= s.Sharing.Blocks[j-1].Block {
				return &FormatError{secSharing, "blocks not sorted"}
			}
		}
	}
	return nil
}

// StateViolation is one coherence-invariant breach found by AuditState.
type StateViolation struct {
	Block uint64
	Proc  int
	Msg   string
}

func (v StateViolation) String() string {
	return fmt.Sprintf("block %#x p%d: %s", v.Block, v.Proc, v.Msg)
}

// AuditState checks directory↔cache agreement on the serialized state
// alone — no machine, no replay: every cached copy must be backed by its
// home directory's record and vice versa. A healthy machine snapshots
// clean; a snapshot taken after a protocol fault (a lost invalidation, a
// stale owner) fails, which is what checkpoint bisection binary-searches
// on: the audit verdict is monotone in time once state has gone bad.
func AuditState(s *Snapshot) []StateViolation {
	type holder struct {
		proc  int
		state cache.State
	}
	held := map[uint64][]holder{}
	for p := range s.Caches {
		c := &s.Caches[p]
		for i, st := range c.State {
			if st != cache.Invalid {
				held[c.Tags[i]] = append(held[c.Tags[i]], holder{p, st})
			}
		}
	}
	dir := map[uint64]directory.BlockSnap{}
	var out []StateViolation
	for _, d := range s.Directories {
		for _, b := range d.Blocks {
			if _, dup := dir[b.Block]; dup {
				out = append(out, StateViolation{b.Block, -1, "recorded by two home directories"})
			}
			dir[b.Block] = b
		}
	}
	blocks := make([]uint64, 0, len(held)+len(dir))
	seen := map[uint64]bool{}
	for b := range held {
		blocks = append(blocks, b)
		seen[b] = true
	}
	for b := range dir {
		if !seen[b] {
			blocks = append(blocks, b)
		}
	}
	sortU64(blocks)
	for _, blk := range blocks {
		e, tracked := dir[blk]
		hs := held[blk]
		if !tracked || e.State == directory.Unowned {
			for _, h := range hs {
				out = append(out, StateViolation{blk, h.proc, fmt.Sprintf("cache holds %s but no directory tracks the block", h.state)})
			}
			continue
		}
		switch e.State {
		case directory.SharedState:
			for _, h := range hs {
				if h.state == cache.Modified {
					out = append(out, StateViolation{blk, h.proc, "Modified line under a Shared directory entry"})
				} else if !e.Sharers.Contains(h.proc) {
					out = append(out, StateViolation{blk, h.proc, "holds a copy without a sharer bit"})
				}
			}
			e.Sharers.ForEach(func(p int) {
				for _, h := range hs {
					if h.proc == p {
						return
					}
				}
				out = append(out, StateViolation{blk, p, "sharer bit without a live cache line"})
			})
		case directory.Exclusive:
			ownerHeld := false
			for _, h := range hs {
				if h.proc == int(e.Owner) {
					ownerHeld = true
					if h.state != cache.Modified {
						out = append(out, StateViolation{blk, h.proc, fmt.Sprintf("exclusive owner holds a %s line", h.state)})
					}
				} else {
					out = append(out, StateViolation{blk, h.proc, fmt.Sprintf("holds a copy while p%d owns the block exclusively", e.Owner)})
				}
			}
			if !ownerHeld {
				out = append(out, StateViolation{blk, int(e.Owner), "Exclusive owner without a live line"})
			}
		}
	}
	return out
}

func sortU64(v []uint64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
