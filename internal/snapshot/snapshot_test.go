package snapshot

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"origin2000/internal/cache"
	"origin2000/internal/check"
	"origin2000/internal/directory"
	"origin2000/internal/mempolicy"
	"origin2000/internal/metrics"
	"origin2000/internal/sim"
	"origin2000/internal/trace"
)

// goldenSnapshot builds a hand-written snapshot exercising every section of
// the format — including the optional observer sections — with stable
// synthetic values. The golden fixture on disk is this snapshot's encoding;
// TestCompatGoldenFixture fails if a format change stops decoding it.
func goldenSnapshot() *Snapshot {
	sharers01 := directory.Sharers{}
	sharers01.Add(0)
	sharers01.Add(1)
	s := &Snapshot{
		Header: Header{
			Version:       Version,
			Procs:         2,
			Engine:        "parallel",
			Workers:       1,
			WorkersForced: true,
			QuiesSeq:      17,
			VirtualTime:   420 * sim.Microsecond,
			Spec: RunSpec{
				App: "FFT", Size: 4096, Variant: "opt", Prefetch: true,
				Div: 64, CacheDiv: 64, Steps: 2, Seed: 42,
			},
			Config: json.RawMessage(`{"Procs":2,"Engine":"parallel"}`),
		},
		Engine: sim.EngineSnap{
			Window:     4 * sim.Microsecond,
			WindowBase: 4 * sim.Microsecond,
			NumShards:  1,
			QuiesSeq:   17,
			CommitSeq:  3,
			Windows:    17,
			Procs: []sim.ProcSnap{
				{ID: 0, Now: 420 * sim.Microsecond, Shard: 0, Busy: 300 * sim.Microsecond,
					Memory: 90 * sim.Microsecond, Sync: 30 * sim.Microsecond,
					Counters: sim.Counters{Reads: 1000, Writes: 200, Hits: 1100, LocalMisses: 80}},
				{ID: 1, Now: 419 * sim.Microsecond, Shard: 0, Blocked: true,
					Busy: 280 * sim.Microsecond, Memory: 100 * sim.Microsecond,
					Counters: sim.Counters{Reads: 900, Writes: 180, RemoteClean: 40}},
			},
		},
		Procs: []ProcSnap{
			{
				Prefetch:  []PrefetchEntry{{Block: 7, Ready: 421 * sim.Microsecond}, {Block: 9, Ready: 422 * sim.Microsecond}},
				PrefetchQ: []uint64{7, 9},
				Phase:     "transpose",
				PhaseMark: Breakdown{Busy: 250 * sim.Microsecond, Memory: 80 * sim.Microsecond},
				PhaseAcc: []PhaseTotal{
					{Name: "fft-rows", Breakdown: Breakdown{Busy: 50 * sim.Microsecond, Memory: 10 * sim.Microsecond}},
				},
			},
			{Phase: "transpose", PhaseMark: Breakdown{Busy: 240 * sim.Microsecond}},
		},
		Caches: []cache.Snap{
			{Sets: 2, Assoc: 2, Tags: []uint64{7, 9, 0, 12},
				State: []cache.State{cache.Shared, cache.Modified, cache.Invalid, cache.Shared},
				Age:   []uint64{5, 6, 0, 7}, Clock: 8},
			{Sets: 2, Assoc: 2, Tags: []uint64{7, 0, 0, 0},
				State: []cache.State{cache.Shared, cache.Invalid, cache.Invalid, cache.Invalid},
				Age:   []uint64{3, 0, 0, 0}, Clock: 4},
		},
		Directories: []directory.Snap{
			{
				Blocks: []directory.BlockSnap{
					{Block: 7, State: directory.SharedState, Sharers: sharers01},
					{Block: 9, State: directory.Exclusive, Owner: 0},
					{Block: 12, State: directory.SharedState, Sharers: func() directory.Sharers {
						var s directory.Sharers
						s.Add(0)
						return s
					}()},
				},
				Shared: 2, Exclusive: 1,
			},
		},
		MemPolicy: mempolicy.TableSnap{
			Kind:  "first-touch",
			Gen:   3,
			Homes: []mempolicy.PageHome{{Page: 0, Home: 0}, {Page: 1, Home: 0}},
			Migrator: &mempolicy.MigratorSnap{
				Threshold:  64,
				Migrations: 1,
				Counts:     []mempolicy.PageCounts{{Page: 1, Counts: []int32{3, 0}}},
			},
		},
		Resources: ResourcesSnap{
			Hubs:    []sim.ResourceSnap{{Name: "hub0", FreeAt: 419 * sim.Microsecond, Busy: 50 * sim.Microsecond, Queued: 2 * sim.Microsecond, Acquires: 120}},
			Mems:    []sim.ResourceSnap{{Name: "mem0", FreeAt: 418 * sim.Microsecond, Busy: 30 * sim.Microsecond, Acquires: 80}},
			Routers: []sim.ResourceSnap{{Name: "router0", Acquires: 10}},
			Metas:   []sim.ResourceSnap{{Name: "meta0"}},
		},
		Memory: MemorySnap{NextAddr: 1 << 20, NodePages: []int{17}},
		Syncs: []SyncRecord{
			{Base: 4096, Kind: "barrier", State: json.RawMessage(`{"waiters":[1],"max_arr":419000000}`)},
			{Base: 8192, Kind: "lock", State: json.RawMessage(`{"held":false,"holder":-1}`)},
		},
		Checker: &check.Snap{
			Blocks: []check.BlockSnap{
				{
					Block: 7, DirState: directory.SharedState, Sharers: sharers01, Ver: 4,
					Held:  []check.LineSnap{{Proc: 0, State: cache.Shared, Ver: 4}, {Proc: 1, State: cache.Shared, Ver: 4}},
					HistN: 3,
					Hist: []check.Event{
						{Kind: 1, Proc: 0, At: 100 * sim.Microsecond, Ver: 3},
						{Kind: 2, Proc: 1, At: 200 * sim.Microsecond, Ver: 4},
						{Kind: 1, Proc: 1, At: 300 * sim.Microsecond, Ver: 4},
					},
				},
			},
			Clocks:        []sim.Time{420 * sim.Microsecond, 419 * sim.Microsecond},
			MaxViolations: 16,
			Events:        345,
		},
		Tracer: &trace.Snap{
			Rings: []trace.RingSnap{
				{N: 5, Resident: []trace.Event{{Time: 1 * sim.Microsecond, Dur: 338, Addr: 7}}},
				{N: 0},
			},
			Buckets: func() []trace.BucketSnap {
				b := trace.BucketSnap{
					Pages:  []trace.HeatEntry{{Key: 0, Stat: trace.HeatStat{LocalMisses: 12, RemoteClean: 3}}},
					Blocks: []trace.HeatEntry{{Key: 7, Stat: trace.HeatStat{InvalsSent: 2}}},
				}
				b.Lat[0] = trace.HistSnap{Buckets: []trace.HistBucket{{Idx: 3, Count: 9}}, Total: 9, Sum: 3 * sim.Microsecond, Max: 400, Min: 300}
				return []trace.BucketSnap{b}
			}(),
			Syncs:  []trace.SyncStat{{Obj: 4096, Label: "barrier#0", Waits: 7, TotalWait: 2 * sim.Microsecond, MaxWait: 800}},
			SyncN:  []trace.LabelCount{{Label: "barrier", Count: 1}, {Label: "lock", Count: 1}},
			Epochs: []sim.Time{100 * sim.Microsecond},
		},
		Metrics: &metrics.Snap{
			ProcNext: []sim.Time{500 * sim.Microsecond, 500 * sim.Microsecond},
			MachNext: 500 * sim.Microsecond,
			PerProc: [][]metrics.ProcSample{
				{{At: 100 * sim.Microsecond, Epoch: 1, Busy: 80 * sim.Microsecond}},
				nil,
			},
			Machine: []metrics.MachineSample{{At: 100 * sim.Microsecond, Epoch: 1, Busy: 150 * sim.Microsecond}},
			Epochs:  []sim.Time{100 * sim.Microsecond},
		},
	}
	return s
}

// TestStructuralRoundTrip is the structural tier's core property: every
// section encodes, decodes, and compares equal.
func TestStructuralRoundTrip(t *testing.T) {
	want := goldenSnapshot()
	data, err := want.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate after round-trip: %v", err)
	}
	// Per-section comparison for actionable failures.
	sections := map[string][2]any{
		"header":      {want.Header, got.Header},
		"engine":      {want.Engine, got.Engine},
		"procs":       {want.Procs, got.Procs},
		"caches":      {want.Caches, got.Caches},
		"directories": {want.Directories, got.Directories},
		"mempolicy":   {want.MemPolicy, got.MemPolicy},
		"resources":   {want.Resources, got.Resources},
		"memory":      {want.Memory, got.Memory},
		"syncs":       {want.Syncs, got.Syncs},
		"checker":     {want.Checker, got.Checker},
		"tracer":      {want.Tracer, got.Tracer},
		"metrics":     {want.Metrics, got.Metrics},
	}
	for name, pair := range sections {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("section %q did not survive the round-trip:\nwant %+v\ngot  %+v", name, pair[0], pair[1])
		}
	}
	// Determinism: the same state must always produce the same bytes (the
	// resume proof and the golden fixture both depend on it).
	again, err := want.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("Encode is not deterministic")
	}
}

// TestRoundTripWithoutObservers checks the optional sections are really
// optional.
func TestRoundTripWithoutObservers(t *testing.T) {
	want := goldenSnapshot()
	want.Checker, want.Tracer, want.Metrics = nil, nil, nil
	data, err := want.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Checker != nil || got.Tracer != nil || got.Metrics != nil {
		t.Fatal("observer sections materialized from nothing")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("observerless snapshot did not survive the round-trip")
	}
}

// TestCorruptedByteFuzz flips every byte of a valid encoding, one at a
// time; each corruption must be rejected with a FormatError, never a panic
// and never a silent success.
func TestCorruptedByteFuzz(t *testing.T) {
	data, err := goldenSnapshot().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := range data {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked with byte %d flipped: %v", i, p)
				}
			}()
			mut := append([]byte(nil), data...)
			mut[i] ^= 0xFF
			s, err := Decode(mut)
			if err == nil {
				t.Fatalf("Decode accepted the file with byte %d flipped", i)
			}
			if s != nil {
				t.Fatalf("Decode returned a snapshot alongside the error for byte %d", i)
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("byte %d: error is %T, want *FormatError: %v", i, err, err)
			}
		}()
	}
}

// TestCorruptionNamesSection checks the error names the section the damage
// is in, so a corrupt multi-gigabyte checkpoint is diagnosable.
func TestCorruptionNamesSection(t *testing.T) {
	data, err := goldenSnapshot().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// The bytes right after the section's name record are its length, CRC,
	// and payload; corrupt a payload byte (name + 8 header bytes + 1).
	idx := bytes.Index(data, []byte("caches"))
	if idx < 0 {
		t.Fatal("encoding does not contain the caches section name")
	}
	mut := append([]byte(nil), data...)
	mut[idx+len("caches")+9] ^= 0x01
	_, err = Decode(mut)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("error is %T, want *FormatError: %v", err, err)
	}
	if fe.Section != "caches" {
		t.Fatalf("corruption in the caches payload reported against section %q: %v", fe.Section, err)
	}
}

// TestTruncatedFuzz decodes every proper prefix; each must be rejected with
// a FormatError, never a panic.
func TestTruncatedFuzz(t *testing.T) {
	data, err := goldenSnapshot().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for n := 0; n < len(data); n++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Decode panicked on %d-byte prefix: %v", n, p)
				}
			}()
			_, err := Decode(data[:n])
			if err == nil {
				t.Fatalf("Decode accepted a %d-byte prefix of a %d-byte file", n, len(data))
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("prefix %d: error is %T, want *FormatError: %v", n, err, err)
			}
		}()
	}
}

func TestDecodeRejectsBadStreams(t *testing.T) {
	valid, err := goldenSnapshot().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("NOTACKPT"), valid[8:]...),
		"trailing bytes": append(append([]byte(nil), valid...), 0xAA),
	}
	// A duplicated section: replay the header section record twice.
	{
		// magic(8) + version(4), then the header section follows first.
		rest := valid[12:]
		var hdrLen int
		{
			nameLen := int(uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24)
			payLen := int(uint32(rest[4+nameLen]) | uint32(rest[5+nameLen])<<8 | uint32(rest[6+nameLen])<<16 | uint32(rest[7+nameLen])<<24)
			hdrLen = 4 + nameLen + 4 + 4 + payLen
		}
		dup := append([]byte(nil), valid[:12]...)
		dup = append(dup, rest[:hdrLen]...)
		dup = append(dup, rest...)
		cases["duplicate section"] = dup
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted it", name)
		}
	}
}

func TestValidateCatchesStructuralDamage(t *testing.T) {
	mutations := []struct {
		name    string
		section string
		mutate  func(*Snapshot)
	}{
		{"wrong version", secHeader, func(s *Snapshot) { s.Header.Version = 99 }},
		{"zero procs", secHeader, func(s *Snapshot) { s.Header.Procs = 0 }},
		{"engine proc count", secEngine, func(s *Snapshot) { s.Engine.Procs = s.Engine.Procs[:1] }},
		{"engine proc ids", secEngine, func(s *Snapshot) { s.Engine.Procs[1].ID = 7 }},
		{"proc count", secProcs, func(s *Snapshot) { s.Procs = append(s.Procs, ProcSnap{}) }},
		{"unsorted prefetch", secProcs, func(s *Snapshot) {
			s.Procs[0].Prefetch[0], s.Procs[0].Prefetch[1] = s.Procs[0].Prefetch[1], s.Procs[0].Prefetch[0]
		}},
		{"cache count", secCaches, func(s *Snapshot) { s.Caches = s.Caches[:1] }},
		{"cache geometry", secCaches, func(s *Snapshot) { s.Caches[0].Tags = s.Caches[0].Tags[:2] }},
		{"unsorted directory", secDirectories, func(s *Snapshot) {
			b := s.Directories[0].Blocks
			b[0], b[1] = b[1], b[0]
		}},
		{"unsorted homes", secMemPolicy, func(s *Snapshot) {
			h := s.MemPolicy.Homes
			h[0], h[1] = h[1], h[0]
		}},
		{"node count", secMemory, func(s *Snapshot) { s.Memory.NodePages = nil }},
		{"checker clocks", secChecker, func(s *Snapshot) { s.Checker.Clocks = s.Checker.Clocks[:1] }},
		{"metrics series", secMetrics, func(s *Snapshot) { s.Metrics.PerProc = s.Metrics.PerProc[:1] }},
	}
	for _, mu := range mutations {
		s := goldenSnapshot()
		mu.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted it", mu.name)
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error is %T, want *FormatError: %v", mu.name, err, err)
			continue
		}
		if fe.Section != mu.section {
			t.Errorf("%s: reported against section %q, want %q (%v)", mu.name, fe.Section, mu.section, err)
		}
	}
	if err := goldenSnapshot().Validate(); err != nil {
		t.Fatalf("unmutated snapshot fails Validate: %v", err)
	}
}

func TestProveEqualAndDiff(t *testing.T) {
	a, b := goldenSnapshot(), goldenSnapshot()
	if sec, ok := ProveEqual(a, b); !ok {
		t.Fatalf("identical snapshots differ in %q", sec)
	}
	if sec, ok := Diff(a, b); !ok {
		t.Fatalf("identical snapshots Diff in %q", sec)
	}
	b.Caches[0].Clock++
	if sec, ok := ProveEqual(a, b); ok || sec != secCaches {
		t.Fatalf("cache divergence reported (%q, %v), want (caches, false)", sec, ok)
	}
	// Observer-only differences are invisible to the simulation proof but
	// visible to Diff.
	c := goldenSnapshot()
	c.Metrics.MachNext++
	if _, ok := ProveEqual(a, c); !ok {
		t.Fatal("ProveEqual looked at an observer section")
	}
	if sec, ok := Diff(a, c); ok || sec != secMetrics {
		t.Fatalf("metrics divergence reported (%q, %v), want (metrics, false)", sec, ok)
	}
}

func TestAuditState(t *testing.T) {
	s := goldenSnapshot()
	if v := AuditState(s); len(v) != 0 {
		t.Fatalf("healthy snapshot audits dirty: %v", v)
	}
	// A dropped invalidation: the directory cleared p1's sharer bit for
	// block 7 but p1 still holds the line.
	bad := goldenSnapshot()
	var only0 directory.Sharers
	only0.Add(0)
	bad.Directories[0].Blocks[0].Sharers = only0
	v := AuditState(bad)
	if len(v) == 0 {
		t.Fatal("stale sharer not detected")
	}
	found := false
	for _, x := range v {
		if x.Block == 7 && x.Proc == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations do not name block 7 / p1: %v", v)
	}
	// And the reverse: a sharer bit with no line behind it.
	bad2 := goldenSnapshot()
	bad2.Caches[1].State[0] = cache.Invalid
	if v := AuditState(bad2); len(v) == 0 {
		t.Fatal("orphan sharer bit not detected")
	}
}

const goldenPath = "testdata/originckpt_v1.bin"

// TestCompatGoldenFixture is the compatibility tier: the checked-in v1
// fixture must keep decoding to exactly the synthetic snapshot, so any
// format change forces a deliberate version bump (and a new fixture)
// instead of silently orphaning old checkpoints.
func TestCompatGoldenFixture(t *testing.T) {
	want := goldenSnapshot()
	data, err := os.ReadFile(goldenPath)
	if errors.Is(err, os.ErrNotExist) {
		enc, eerr := want.Encode()
		if eerr != nil {
			t.Fatalf("Encode: %v", eerr)
		}
		if merr := os.MkdirAll(filepath.Dir(goldenPath), 0o755); merr != nil {
			t.Fatalf("mkdir testdata: %v", merr)
		}
		if werr := os.WriteFile(goldenPath, enc, 0o644); werr != nil {
			t.Fatalf("write golden fixture: %v", werr)
		}
		t.Logf("wrote new golden fixture %s (%d bytes) — commit it", goldenPath, len(enc))
		data = enc
	} else if err != nil {
		t.Fatalf("read golden fixture: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("golden fixture no longer validates: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("golden fixture decodes to different content — format drift; bump the version and regenerate deliberately")
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.originckpt")
	want := goldenSnapshot()
	if err := want.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("file round-trip lost content")
	}
}
