package synchro

import (
	"testing"

	"origin2000/internal/core"
)

// BenchmarkBarrier32 measures a full 32-processor tournament barrier
// episode, including all simulated traffic.
func BenchmarkBarrier32(b *testing.B) {
	m := newMachine(32)
	bar := NewBarrier(m, 32, BarrierTournament)
	err := m.Run(func(p *core.Proc) {
		for i := 0; i < b.N; i++ {
			bar.Wait(p)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLockHandoff measures contended lock transfer between two
// processors.
func BenchmarkLockHandoff(b *testing.B) {
	m := newMachine(2)
	l := NewLock(m, LockTicketLLSC)
	err := m.Run(func(p *core.Proc) {
		for i := 0; i < b.N; i++ {
			l.Acquire(p)
			l.Release(p)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
