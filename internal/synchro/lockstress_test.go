package synchro

import (
	"testing"

	"origin2000/internal/core"
	"origin2000/internal/sim"
)

func TestLockStress(t *testing.T) {
	m := newMachine(8)
	locks := make([]*Lock, 4)
	for i := range locks {
		locks[i] = NewLock(m, LockTicketLLSC)
	}
	total := 0
	err := m.Run(func(p *core.Proc) {
		for it := 0; it < 200; it++ {
			l := locks[(it*7+p.ID())%4]
			l.Acquire(p)
			total++
			p.Compute(sim.Time(1+(it+p.ID())%5) * 300 * sim.Nanosecond)
			l.Release(p)
			p.Compute(sim.Time(1+it%3) * 100 * sim.Nanosecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 8*200 {
		t.Fatalf("total = %d", total)
	}
}

// TestLockStressWithProbing mimics infer's pattern: some processors probe
// shared lines and advance in small sync steps while others cycle locks.
func TestLockStressWithProbing(t *testing.T) {
	m := newMachine(8)
	locks := make([]*Lock, 4)
	for i := range locks {
		locks[i] = NewLock(m, LockTicketLLSC)
	}
	ctl := m.Alloc("ctl", 16, core.BlockBytes)
	work := 0
	const want = 4 * 300
	err := m.Run(func(p *core.Proc) {
		if p.ID() >= 4 {
			// Prober: scan control lines until the workers finish.
			for work < want {
				for i := 0; i < 16; i++ {
					p.Read(ctl.Addr(i))
				}
				p.SyncAdvanceTo(p.Now() + 2*sim.Microsecond)
			}
			return
		}
		for it := 0; it < 300; it++ {
			l := locks[(it+p.ID())%4]
			l.Acquire(p)
			work++
			p.Write(ctl.Addr((it + p.ID()) % 16))
			p.Compute(sim.Time(1+(it+p.ID())%5) * 300 * sim.Nanosecond)
			l.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if work != want {
		t.Fatalf("work = %d, want %d", work, want)
	}
}
