package synchro

import (
	"origin2000/internal/core"
)

// TaskPool is a distributed task queue with stealing, the dynamic
// load-balancing structure of Raytrace, Volrend and the original
// Shear-Warp: each processor owns a queue; when it runs dry it probes and
// steals a chunk from another processor's queue, paying lock and
// queue-line traffic for both.
type TaskPool struct {
	m      *core.Machine
	locks  []*Lock
	queues [][]int
	state  *core.Array // one cache line of queue metadata per processor
	// StealChunkDiv controls how much a thief takes: victim_len /
	// StealChunkDiv tasks, at least one. 2 (steal half) is the default.
	StealChunkDiv int
}

// NewTaskPool creates a pool with one queue per processor, using lock
// algorithm alg for the per-queue locks.
func NewTaskPool(m *core.Machine, alg LockAlgorithm) *TaskPool {
	n := m.NumProcs()
	tp := &TaskPool{
		m:             m,
		locks:         make([]*Lock, n),
		queues:        make([][]int, n),
		state:         m.Alloc("taskpool.state", n, core.BlockBytes),
		StealChunkDiv: 2,
	}
	for i := range tp.locks {
		tp.locks[i] = NewLock(m, alg)
	}
	m.RegisterStateSnap(tp.state.Base(), "taskpool", tp.snapState)
	return tp
}

// poolState is the serializable host state of one TaskPool (checkpoint
// proof obligation; see barrierState in synchro.go).
type poolState struct {
	Queues        [][]int `json:"queues"`
	StealChunkDiv int     `json:"steal_chunk_div"`
}

func (tp *TaskPool) snapState() any {
	return poolState{Queues: tp.queues, StealChunkDiv: tp.StealChunkDiv}
}

// Seed appends tasks to processor q's queue (done before the parallel
// phase; seeding is not simulated traffic).
func (tp *TaskPool) Seed(q int, tasks ...int) {
	tp.queues[q] = append(tp.queues[q], tasks...)
}

// Pending reports the total number of queued tasks (diagnostics).
func (tp *TaskPool) Pending() int {
	n := 0
	for _, q := range tp.queues {
		n += len(q)
	}
	return n
}

// Get returns the next task for p: from its own queue, or stolen from
// another processor's. ok is false when every queue is empty.
func (tp *TaskPool) Get(p *core.Proc) (task int, ok bool) {
	// Queue lengths of every processor are probed (and stolen from), so
	// the whole operation runs in the window's serialized commit phase.
	p.GlobalSection()
	defer p.EndGlobal()
	me := p.ID()
	n := len(tp.queues)
	// Fast path: own queue.
	if len(tp.queues[me]) > 0 {
		tp.locks[me].Acquire(p)
		if len(tp.queues[me]) > 0 {
			p.SyncWrite(tp.state.Addr(me))
			task = tp.queues[me][0]
			tp.queues[me] = tp.queues[me][1:]
			tp.locks[me].Release(p)
			p.Stats().ExecutedTasks++
			return task, true
		}
		tp.locks[me].Release(p)
	}
	// Steal: probe victims round-robin from me+1.
	for off := 1; off < n; off++ {
		v := (me + off) % n
		p.SyncRead(tp.state.Addr(v)) // probe the victim's queue state
		if len(tp.queues[v]) == 0 {
			continue
		}
		tp.locks[v].Acquire(p)
		if len(tp.queues[v]) == 0 {
			tp.locks[v].Release(p)
			continue
		}
		div := tp.StealChunkDiv
		if div < 1 {
			div = 2
		}
		k := len(tp.queues[v]) / div
		if k < 1 {
			k = 1
		}
		// Thieves take from the tail, owners from the head.
		q := tp.queues[v]
		stolen := make([]int, k)
		copy(stolen, q[len(q)-k:])
		tp.queues[v] = q[:len(q)-k]
		p.SyncWrite(tp.state.Addr(v))
		tp.locks[v].Release(p)

		p.Stats().StolenTasks += int64(k)
		p.Stats().ExecutedTasks++
		if k > 1 {
			tp.locks[me].Acquire(p)
			tp.queues[me] = append(tp.queues[me], stolen[1:]...)
			p.SyncWrite(tp.state.Addr(me))
			tp.locks[me].Release(p)
		}
		return stolen[0], true
	}
	return 0, false
}
