// Package synchro provides the synchronization primitives the paper's
// applications use — barriers and locks in the algorithmic variants of
// Section 6.3 (LL-SC ticket locks and tournament barriers, the at-memory
// fetch&op versions, and simple centralized ones) — plus a task-stealing
// work pool used by the dynamically load-balanced applications.
//
// The primitives issue real simulated traffic: a centralized barrier's
// counter line bounces between arrivals, release flags are invalidated and
// re-read by all waiters, and fetch&op variants use the machine's uncached
// at-memory operation. Waiting time and operation overhead are charged to
// the Sync bucket and separated in the SyncWait/SyncOverhead counters, so
// the paper's observation that wait dominates overhead is measurable.
package synchro

import (
	"origin2000/internal/core"
	"origin2000/internal/sim"
)

// BarrierAlgorithm selects a barrier implementation.
type BarrierAlgorithm int

const (
	// BarrierTournament models a tournament barrier built from LL-SC:
	// uncontended per-processor flags and a logarithmic release wave.
	// This is what the paper's main results use.
	BarrierTournament BarrierAlgorithm = iota
	// BarrierCentralized models a flat counter barrier built from LL-SC:
	// every arrival performs a read-modify-write on one shared line,
	// which bounces between caches.
	BarrierCentralized
	// BarrierFetchOp is the centralized barrier using the Origin's
	// at-memory fetch&op, avoiding line bouncing.
	BarrierFetchOp
)

func (a BarrierAlgorithm) String() string {
	switch a {
	case BarrierTournament:
		return "tournament(LL-SC)"
	case BarrierCentralized:
		return "centralized(LL-SC)"
	case BarrierFetchOp:
		return "centralized(fetch&op)"
	}
	return "unknown"
}

// Barrier synchronizes all n processors. It is reusable (applications call
// Wait in every iteration).
type Barrier struct {
	m   *core.Machine
	n   int
	alg BarrierAlgorithm

	counter *core.Array // one line: arrival counter
	release *core.Array // one line: release flag
	flags   *core.Array // per-processor lines (tournament)

	waiters []*core.Proc
	maxArr  sim.Time
	rounds  int
}

// NewBarrier creates a barrier for n processors on m.
func NewBarrier(m *core.Machine, n int, alg BarrierAlgorithm) *Barrier {
	if n <= 0 {
		n = m.NumProcs()
	}
	b := &Barrier{
		m:       m,
		n:       n,
		alg:     alg,
		counter: m.Alloc("barrier.counter", 1, core.BlockBytes),
		release: m.Alloc("barrier.release", 1, core.BlockBytes),
		flags:   m.Alloc("barrier.flags", n, core.BlockBytes),
	}
	for b.rounds = 0; 1<<b.rounds < n; b.rounds++ {
	}
	m.TraceRegisterSync(b.counter.Base(), "barrier")
	m.RegisterStateSnap(b.counter.Base(), "barrier", b.snapState)
	return b
}

// barrierState is the serializable host state of one Barrier: who is parked
// waiting and the latest arrival time of the in-progress episode. It is a
// checkpoint proof obligation (internal/snapshot), not a restore target —
// resume replays the program, which rebuilds the barrier.
type barrierState struct {
	Waiters []int    `json:"waiters,omitempty"`
	MaxArr  sim.Time `json:"max_arr,omitempty"`
}

func (b *Barrier) snapState() any {
	s := barrierState{MaxArr: b.maxArr}
	for _, p := range b.waiters {
		s.Waiters = append(s.Waiters, p.ID())
	}
	return s
}

// N returns the number of participants.
func (b *Barrier) N() int { return b.n }

// Wait blocks until all n processors have arrived. The waiting span is
// charged to the Sync bucket; arrival and release traffic is simulated.
func (b *Barrier) Wait(p *core.Proc) {
	// The barrier's arrival list and wake bookkeeping are shared between
	// every participant, so the whole protocol — including the code a
	// waiter runs after its Block returns — runs in the window's
	// serialized commit phase.
	p.GlobalSection()
	defer p.EndGlobal()
	c := p.Stats()
	c.BarrierWaits++
	before := p.Now()
	// Arrival protocol.
	switch b.alg {
	case BarrierCentralized:
		// Read-modify-write on the shared counter line: the line
		// bounces to each arriving processor in turn.
		p.SyncWrite(b.counter.Addr(0))
	case BarrierFetchOp:
		p.FetchOp(b.counter.Addr(0))
	default: // tournament: set own flag, no shared line
		p.SyncWrite(b.flags.Addr(p.ID() % b.n))
	}
	c.SyncOverhead += p.Now() - before

	arrival := p.Now()
	if arrival > b.maxArr {
		b.maxArr = arrival
	}
	if b.n == b.m.NumProcs() {
		// Full-machine barriers bound the run's critical path: record every
		// arrival (the releaser is the n-th, so the recorder sees the
		// complete set before MarkEpoch closes the epoch below).
		p.MarkArrival()
	}
	if len(b.waiters) < b.n-1 {
		b.waiters = append(b.waiters, p)
		p.Block()
		// Woken at the release time; the span was imbalance wait.
		span := p.Now() - arrival
		p.ChargeSync(span)
		c.SyncWait += span
		p.TraceSyncWait(b.counter.Base(), arrival, span)
		b.exitProtocol(p)
		return
	}
	// Last arriver releases everyone.
	releaseAt := b.maxArr
	if b.alg == BarrierTournament {
		// Logarithmic wake-up wave.
		releaseAt += sim.Time(b.rounds) * wakeStep
	}
	waiters := b.waiters
	b.waiters = b.waiters[:0]
	b.maxArr = 0
	beforeRel := p.Now()
	if b.alg != BarrierTournament {
		// Releaser writes the release flag; waiters re-read it.
		p.SyncWrite(b.release.Addr(0))
		if p.Now() > releaseAt {
			releaseAt = p.Now()
		}
	}
	c.SyncOverhead += p.Now() - beforeRel
	if b.n == b.m.NumProcs() {
		// A full-machine release is a phase boundary: record it so the
		// tracer and the metrics sampler can align runs epoch by epoch.
		p.MarkEpoch(releaseAt)
	}
	// All waiters resume at one release time, so order is immaterial (the
	// run queues sort by clock then id): release them in a single batch.
	p.WakeAllAt(waiters, releaseAt)
	if releaseAt > p.Now() {
		span := releaseAt - p.Now()
		c.SyncWait += span
		p.TraceSyncWait(b.counter.Base(), p.Now(), span)
		p.SyncAdvanceTo(releaseAt)
	}
	b.exitProtocol(p)
}

// wakeStep is the per-level latency of a tournament barrier's release wave.
const wakeStep = 300 * sim.Nanosecond

// exitProtocol models the cost of observing the release.
func (b *Barrier) exitProtocol(p *core.Proc) {
	c := p.Stats()
	before := p.Now()
	switch b.alg {
	case BarrierTournament:
		// Each processor re-reads its parent's flag: distinct lines,
		// no contention.
		p.SyncRead(b.flags.Addr(p.ID() % b.n))
	default:
		// All waiters re-read the shared release flag, which the
		// releaser just invalidated: contended fan-out.
		p.SyncRead(b.release.Addr(0))
	}
	c.SyncOverhead += p.Now() - before
}

// LockAlgorithm selects a lock implementation.
type LockAlgorithm int

const (
	// LockTicketLLSC is a ticket lock built from LL-SC: the ticket line
	// bounces between acquirers. The paper's main results use it.
	LockTicketLLSC LockAlgorithm = iota
	// LockTicketFetchOp grabs tickets with the at-memory fetch&op.
	LockTicketFetchOp
	// LockArray is an array-based queue lock: each waiter spins on its
	// own line.
	LockArray
)

func (a LockAlgorithm) String() string {
	switch a {
	case LockTicketLLSC:
		return "ticket(LL-SC)"
	case LockTicketFetchOp:
		return "ticket(fetch&op)"
	case LockArray:
		return "array"
	}
	return "unknown"
}

type lockWaiter struct {
	p   *core.Proc
	req sim.Time
}

// Lock is a mutual-exclusion lock with FIFO (ticket) granting.
type Lock struct {
	m      *core.Machine
	alg    LockAlgorithm
	ticket *core.Array // ticket-dispenser line
	serve  *core.Array // now-serving line (shared spin target)
	slots  *core.Array // per-processor spin lines (array lock)

	held   bool
	holder int
	queue  []lockWaiter
}

// NewLock creates a lock on m.
func NewLock(m *core.Machine, alg LockAlgorithm) *Lock {
	l := &Lock{
		m:      m,
		alg:    alg,
		ticket: m.Alloc("lock.ticket", 1, core.BlockBytes),
		serve:  m.Alloc("lock.serve", 1, core.BlockBytes),
		slots:  m.Alloc("lock.slots", m.NumProcs(), core.BlockBytes),
		holder: -1,
	}
	l.m.TraceRegisterSync(l.ticket.Base(), "lock")
	m.RegisterStateSnap(l.ticket.Base(), "lock", l.snapState)
	return l
}

// lockState is the serializable host state of one Lock (checkpoint proof
// obligation; see barrierState).
type lockState struct {
	Held   bool        `json:"held"`
	Holder int         `json:"holder"`
	Queue  []lockEntry `json:"queue,omitempty"`
}

type lockEntry struct {
	Proc int      `json:"proc"`
	Req  sim.Time `json:"req"`
}

func (l *Lock) snapState() any {
	s := lockState{Held: l.held, Holder: l.holder}
	for _, w := range l.queue {
		s.Queue = append(s.Queue, lockEntry{Proc: w.p.ID(), Req: w.req})
	}
	return s
}

// Acquire obtains the lock, blocking in virtual time while it is held.
//
// The global section opened here stays open until Release: the critical
// region mutates host state shared across processors (that is why the app
// locks), so it must stay on the serialized commit chain.  If the section
// closed at return, a holder parked at a window edge mid-region would
// resume on a phase-1 shard chain and its host writes would be unordered
// against other shards' reads in the same window -- a host data race and,
// worse, a worker-count-dependent simulation result.
func (l *Lock) Acquire(p *core.Proc) {
	// The lock's queue and holder state are shared: commit-phase only.
	p.GlobalSection()
	c := p.Stats()
	c.LockAcquires++
	before := p.Now()
	switch l.alg {
	case LockTicketFetchOp:
		p.FetchOp(l.ticket.Addr(0))
	default: // LL-SC ticket grab or array-slot grab: RMW on shared line
		p.SyncWrite(l.ticket.Addr(0))
	}
	c.SyncOverhead += p.Now() - before

	if !l.held {
		l.held = true
		l.holder = p.ID()
		p.TraceSyncAcquire(l.ticket.Base(), p.Now(), 0)
		return
	}
	req := p.Now()
	l.queue = append(l.queue, lockWaiter{p: p, req: req})
	p.Block()
	span := p.Now() - req
	p.ChargeSync(span)
	c.SyncWait += span
	p.TraceSyncAcquire(l.ticket.Base(), req, span)
	// Observe the handoff: re-read the spin target.
	before = p.Now()
	switch l.alg {
	case LockArray:
		p.SyncRead(l.slots.Addr(p.ID()))
	default:
		p.SyncRead(l.serve.Addr(0))
	}
	c.SyncOverhead += p.Now() - before
	l.holder = p.ID()
}

// Release hands the lock to the earliest waiter (by request time), if any.
// It runs inside -- and closes -- the global section opened by Acquire.
func (l *Lock) Release(p *core.Proc) {
	defer p.EndGlobal()
	if !l.held || l.holder != p.ID() {
		panic("synchro: Release by non-holder")
	}
	c := p.Stats()
	before := p.Now()
	switch l.alg {
	case LockArray:
		if len(l.queue) > 0 {
			// Write the successor's slot only: no invalidation storm.
			next := l.earliest()
			p.SyncWrite(l.slots.Addr(l.queue[next].p.ID()))
		}
	default:
		// Bump now-serving: invalidates every spinner's copy.
		p.SyncWrite(l.serve.Addr(0))
	}
	c.SyncOverhead += p.Now() - before

	if len(l.queue) == 0 {
		l.held = false
		l.holder = -1
		return
	}
	next := l.earliest()
	w := l.queue[next]
	l.queue = append(l.queue[:next], l.queue[next+1:]...)
	grant := p.Now()
	if w.req > grant {
		grant = w.req
	}
	l.holder = w.p.ID() // effective once it runs
	p.WakeAt(w.p, grant)
}

func (l *Lock) earliest() int {
	best := 0
	for i := 1; i < len(l.queue); i++ {
		if l.queue[i].req < l.queue[best].req ||
			(l.queue[i].req == l.queue[best].req && l.queue[i].p.ID() < l.queue[best].p.ID()) {
			best = i
		}
	}
	return best
}

// Held reports whether the lock is currently held (diagnostics).
func (l *Lock) Held() bool { return l.held }
