package synchro

import (
	"testing"
	"testing/quick"

	"origin2000/internal/core"
	"origin2000/internal/sim"
)

func newMachine(procs int) *core.Machine { return core.New(core.Origin2000(procs)) }

func TestBarrierReleasesAtMaxArrival(t *testing.T) {
	for _, alg := range []BarrierAlgorithm{BarrierTournament, BarrierCentralized, BarrierFetchOp} {
		m := newMachine(8)
		b := NewBarrier(m, 8, alg)
		var releases [8]sim.Time
		err := m.Run(func(p *core.Proc) {
			// Staggered arrivals: proc i arrives near i*10us.
			p.Compute(sim.Time(p.ID()) * 10 * sim.Microsecond)
			b.Wait(p)
			releases[p.ID()] = p.Now()
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		// Nobody is released before the last arrival (70us).
		last := sim.Time(7) * 10 * sim.Microsecond
		for i, r := range releases {
			if r < last {
				t.Errorf("%v: proc %d released at %v, before last arrival %v", alg, i, r, last)
			}
		}
		// Early arrivers accumulate sync wait; the latest almost none.
		w0 := m.Proc(0).Stats().SyncWait
		w7 := m.Proc(7).Stats().SyncWait
		if w0 <= w7 {
			t.Errorf("%v: wait(proc0)=%v should exceed wait(proc7)=%v", alg, w0, w7)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	m := newMachine(4)
	b := NewBarrier(m, 4, BarrierTournament)
	counter := 0
	err := m.Run(func(p *core.Proc) {
		for it := 0; it < 5; it++ {
			if p.ID() == 0 {
				counter++
			}
			b.Wait(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 5 {
		t.Errorf("counter = %d, want 5", counter)
	}
	if got := m.Proc(2).Stats().BarrierWaits; got != 5 {
		t.Errorf("barrier waits = %d, want 5", got)
	}
}

func TestCentralizedBarrierCostGrowsWithProcs(t *testing.T) {
	// The centralized counter line bounces: overhead grows with
	// processor count much faster than the tournament's.
	overhead := func(procs int, alg BarrierAlgorithm) sim.Time {
		m := newMachine(procs)
		b := NewBarrier(m, procs, alg)
		err := m.Run(func(p *core.Proc) { b.Wait(p) })
		if err != nil {
			t.Fatal(err)
		}
		var sum sim.Time
		for i := 0; i < procs; i++ {
			sum += m.Proc(i).Stats().SyncOverhead
		}
		return sum / sim.Time(procs)
	}
	c32 := overhead(32, BarrierCentralized)
	t32 := overhead(32, BarrierTournament)
	if c32 <= t32 {
		t.Errorf("centralized overhead (%v) should exceed tournament (%v) at 32p", c32, t32)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	for _, alg := range []LockAlgorithm{LockTicketLLSC, LockTicketFetchOp, LockArray} {
		m := newMachine(8)
		l := NewLock(m, alg)
		inside, maxInside, total := 0, 0, 0
		err := m.Run(func(p *core.Proc) {
			for it := 0; it < 10; it++ {
				l.Acquire(p)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				total++
				p.Compute(500 * sim.Nanosecond)
				inside--
				l.Release(p)
				p.Compute(sim.Time(1+p.ID()) * 200 * sim.Nanosecond)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if maxInside != 1 {
			t.Errorf("%v: %d processors inside the critical section", alg, maxInside)
		}
		if total != 80 {
			t.Errorf("%v: %d critical sections, want 80", alg, total)
		}
	}
}

func TestLockGrantsFIFOByRequestTime(t *testing.T) {
	m := newMachine(4)
	l := NewLock(m, LockTicketLLSC)
	var order []int
	err := m.Run(func(p *core.Proc) {
		// Proc 0 grabs the lock and holds it long; others request at
		// staggered times and must be granted in that order.
		if p.ID() == 0 {
			l.Acquire(p)
			p.Compute(100 * sim.Microsecond)
			l.Release(p)
			return
		}
		p.Compute(sim.Time(5-p.ID()) * 5 * sim.Microsecond) // 3,2,1 order
		l.Acquire(p)
		order = append(order, p.ID())
		l.Release(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
			break
		}
	}
}

func TestLockWaitDominatesUnderContention(t *testing.T) {
	// With a long critical section, waiting time dwarfs operation
	// overhead — the paper's Section 6.3 conclusion.
	m := newMachine(16)
	l := NewLock(m, LockTicketLLSC)
	err := m.Run(func(p *core.Proc) {
		l.Acquire(p)
		p.Compute(20 * sim.Microsecond)
		l.Release(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	var wait, overhead sim.Time
	for i := 0; i < 16; i++ {
		wait += m.Proc(i).Stats().SyncWait
		overhead += m.Proc(i).Stats().SyncOverhead
	}
	if wait < 10*overhead {
		t.Errorf("wait (%v) should dominate overhead (%v)", wait, overhead)
	}
}

func TestTaskPoolExecutesAllTasksOnce(t *testing.T) {
	m := newMachine(8)
	tp := NewTaskPool(m, LockTicketLLSC)
	const tasks = 200
	for i := 0; i < tasks; i++ {
		tp.Seed(i%8, i)
	}
	seen := make([]int, tasks)
	err := m.Run(func(p *core.Proc) {
		for {
			task, ok := tp.Get(p)
			if !ok {
				return
			}
			seen[task]++
			p.Compute(sim.Time(1+task%7) * sim.Microsecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("task %d executed %d times", i, n)
		}
	}
}

func TestTaskPoolStealingBalancesLoad(t *testing.T) {
	// All tasks seeded on one queue: the others must steal.
	m := newMachine(8)
	tp := NewTaskPool(m, LockTicketLLSC)
	const tasks = 160
	for i := 0; i < tasks; i++ {
		tp.Seed(0, i)
	}
	executed := make([]int64, 8)
	err := m.Run(func(p *core.Proc) {
		for {
			_, ok := tp.Get(p)
			if !ok {
				return
			}
			executed[p.ID()]++
			p.Compute(5 * sim.Microsecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var stolen int64
	busyProcs := 0
	for i := 0; i < 8; i++ {
		stolen += m.Proc(i).Stats().StolenTasks
		if executed[i] > 0 {
			busyProcs++
		}
	}
	if stolen == 0 {
		t.Error("no tasks were stolen")
	}
	if busyProcs < 6 {
		t.Errorf("only %d processors executed tasks; stealing failed to spread load", busyProcs)
	}
}

func TestFetchOpLockCheaperEntryUnderNoContention(t *testing.T) {
	// Sanity: both lock types work single-threaded and overheads are
	// small and positive.
	for _, alg := range []LockAlgorithm{LockTicketLLSC, LockTicketFetchOp} {
		m := newMachine(2)
		l := NewLock(m, alg)
		err := m.RunOne(func(p *core.Proc) {
			for i := 0; i < 10; i++ {
				l.Acquire(p)
				l.Release(p)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if oh := m.Proc(0).Stats().SyncOverhead; oh <= 0 {
			t.Errorf("%v: overhead = %v, want > 0", alg, oh)
		}
	}
}

// TestTaskPoolEveryTaskOnceProperty: whatever the seeding pattern, every
// seeded task is returned exactly once across all processors.
func TestTaskPoolEveryTaskOnceProperty(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 60 {
			seeds = seeds[:60]
		}
		m := newMachine(4)
		tp := NewTaskPool(m, LockTicketLLSC)
		for task, q := range seeds {
			tp.Seed(int(q)%4, task)
		}
		got := make([]int, len(seeds))
		err := m.Run(func(p *core.Proc) {
			for {
				task, ok := tp.Get(p)
				if !ok {
					return
				}
				got[task]++
				p.Compute(sim.Time(1+task%3) * sim.Microsecond)
			}
		})
		if err != nil {
			return false
		}
		for _, n := range got {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
