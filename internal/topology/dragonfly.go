package topology

import "fmt"

// DefaultGroupSize is the number of routers per dragonfly group when a
// scenario does not specify one.
const DefaultGroupSize = 4

// Dragonfly is a dragonfly interconnect: routers are grouped into
// fully-connected groups of groupSize (1 hop between any two routers in a
// group) and every pair of groups is joined by a global link, so a
// cross-group packet takes at most 3 hops (source → gateway, global link,
// gateway → destination). The model charges the uniform worst-case 3 hops
// for every cross-group route to stay deterministic and symmetric; global
// links are point-to-point, so there are no shared metarouter resources.
type Dragonfly struct {
	numRouters int
	groupSize  int
	groups     int
}

var _ Network = (*Dragonfly)(nil)

// NewDragonfly builds a dragonfly over the given number of routers.
// groupSize <= 0 selects DefaultGroupSize.
func NewDragonfly(numRouters, groupSize int) *Dragonfly {
	if numRouters < 1 {
		numRouters = 1
	}
	if groupSize < 1 {
		groupSize = DefaultGroupSize
	}
	groups := (numRouters + groupSize - 1) / groupSize
	return &Dragonfly{numRouters: numRouters, groupSize: groupSize, groups: groups}
}

// Kind identifies the dragonfly in scenario specs.
func (d *Dragonfly) Kind() string { return "dragonfly" }

// Describe returns a one-line human description of the dragonfly.
func (d *Dragonfly) Describe() string {
	return fmt.Sprintf("dragonfly, %d groups of %d routers", d.groups, d.groupSize)
}

// NumRouters reports the number of routers.
func (d *Dragonfly) NumRouters() int { return d.numRouters }

// NumMetarouters is always 0: dragonfly global links are point-to-point.
func (d *Dragonfly) NumMetarouters() int { return 0 }

// Route computes the deterministic route from router a to router b:
// 0 hops to self, 1 hop within a fully-connected group, 3 hops across
// groups (to the gateway, over the global link, to the destination).
func (d *Dragonfly) Route(a, b int) Route {
	if a == b {
		return Route{Hops: 0, Meta: -1}
	}
	if a/d.groupSize == b/d.groupSize {
		return Route{Hops: 1, Meta: -1}
	}
	return Route{Hops: 3, Meta: -1}
}

// Hops is shorthand for Route(a, b).Hops.
func (d *Dragonfly) Hops(a, b int) int { return d.Route(a, b).Hops }

// MaxHops returns the dragonfly diameter: 3 across groups, 1 within the
// single group, 0 for a one-router network.
func (d *Dragonfly) MaxHops() int {
	if d.groups > 1 {
		return 3
	}
	if d.numRouters > 1 {
		return 1
	}
	return 0
}

// AverageHops returns the mean hop count over ordered pairs with a != b.
func (d *Dragonfly) AverageHops() float64 { return averageHops(d) }
