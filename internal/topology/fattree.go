package topology

import "fmt"

// DefaultPodSize is the number of leaf routers per pod when a scenario
// does not specify one.
const DefaultPodSize = 4

// FatTree is a two-level fat-tree (folded-Clos) interconnect: leaf
// routers are grouped into pods of podSize, each pod is internally joined
// through its pod switch (2 hops leaf→switch→leaf), and pods are joined
// through podSize spine switches (4 hops leaf→pod→spine→pod→leaf). The
// spines are shared crossing resources, so they occupy the machine's
// metarouter resource slots exactly as the Origin's metarouters do — a
// fat-tree trades the Origin's log-diameter hypercube for a flat,
// uniform 4-hop cross-pod distance with contention concentrated in the
// spine layer.
type FatTree struct {
	numRouters int
	podSize    int
	pods       int
	spines     int // 0 when a single pod needs no spine layer
}

var _ Network = (*FatTree)(nil)

// NewFatTree builds a fat-tree over the given number of leaf routers.
// podSize <= 0 selects DefaultPodSize. With ceil(n/podSize) == 1 pod the
// spine layer is omitted; otherwise there are podSize spines.
func NewFatTree(numRouters, podSize int) *FatTree {
	if numRouters < 1 {
		numRouters = 1
	}
	if podSize < 1 {
		podSize = DefaultPodSize
	}
	pods := (numRouters + podSize - 1) / podSize
	spines := 0
	if pods > 1 {
		spines = podSize
	}
	return &FatTree{numRouters: numRouters, podSize: podSize, pods: pods, spines: spines}
}

// Kind identifies the fat-tree in scenario specs.
func (t *FatTree) Kind() string { return "fattree" }

// Describe returns a one-line human description of the fat-tree.
func (t *FatTree) Describe() string {
	if t.spines == 0 {
		return fmt.Sprintf("fat-tree, single pod of %d routers", t.numRouters)
	}
	return fmt.Sprintf("fat-tree, %d pods of %d routers + %d spines",
		t.pods, t.podSize, t.spines)
}

// NumRouters reports the number of leaf routers.
func (t *FatTree) NumRouters() int { return t.numRouters }

// NumMetarouters reports the number of spine switches; spines occupy the
// machine's metarouter resource slots.
func (t *FatTree) NumMetarouters() int { return t.spines }

// Route computes the deterministic route from router a to router b:
// 0 hops to self, 2 hops within a pod, 4 hops across pods through the
// spine chosen by the source router's in-pod index (deterministic ECMP).
func (t *FatTree) Route(a, b int) Route {
	if a == b {
		return Route{Hops: 0, Meta: -1}
	}
	if a/t.podSize == b/t.podSize {
		return Route{Hops: 2, Meta: -1}
	}
	return Route{Hops: 4, Meta: a % t.podSize}
}

// Hops is shorthand for Route(a, b).Hops.
func (t *FatTree) Hops(a, b int) int { return t.Route(a, b).Hops }

// MaxHops returns the fat-tree diameter: 4 across pods, 2 within the
// single pod, 0 for a one-router network.
func (t *FatTree) MaxHops() int {
	if t.spines > 0 {
		return 4
	}
	if t.numRouters > 1 {
		return 2
	}
	return 0
}

// AverageHops returns the mean hop count over ordered pairs with a != b.
func (t *FatTree) AverageHops() float64 { return averageHops(t) }
