package topology

import "math/rand"

// A Mapping assigns logical process i to physical processor Mapping[i].
// The paper's Section 7.1 compares several strategies; all of them are
// permutations of [0, n).
type Mapping []int

// Valid reports whether m is a permutation of [0, len(m)).
func (m Mapping) Valid() bool {
	seen := make([]bool, len(m))
	for _, v := range m {
		if v < 0 || v >= len(m) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Linear maps process i to processor i (the paper's "linear mapping").
func Linear(n int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// Random maps processes to processors uniformly at random, deterministically
// from seed (the paper's "random mapping").
func Random(n int, seed int64) Mapping {
	m := Linear(n)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(n, func(i, j int) { m[i], m[j] = m[j], m[i] })
	return m
}

// PairedRandom keeps neighbouring process pairs (2i, 2i+1) together on a
// node but places the pairs on randomly chosen nodes. The paper uses this
// to separate the effect of node co-residence from topology placement.
func PairedRandom(n int, seed int64) Mapping {
	if n%2 != 0 {
		return Random(n, seed)
	}
	pairs := n / 2
	order := make([]int, pairs)
	for i := range order {
		order[i] = i
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(pairs, func(i, j int) { order[i], order[j] = order[j], order[i] })
	m := make(Mapping, n)
	for logical, physical := range order {
		m[2*logical] = 2 * physical
		m[2*logical+1] = 2*physical + 1
	}
	return m
}

// GrayPairs assigns neighbouring process pairs to nodes whose routers follow
// the Gray-code order of the hypercube, so partition neighbours are one hop
// apart — the "appropriate near-neighbour mapping" for grid codes like
// Ocean in Section 7.1. procsPerNode is typically 2 and nodesPerRouter 2.
func GrayPairs(n, procsPerNode, nodesPerRouter int) Mapping {
	if procsPerNode < 1 {
		procsPerNode = 1
	}
	if nodesPerRouter < 1 {
		nodesPerRouter = 1
	}
	nodes := (n + procsPerNode - 1) / procsPerNode
	routers := (nodes + nodesPerRouter - 1) / nodesPerRouter
	// Order routers by Gray code (restricted to existing routers), then
	// enumerate the nodes under each router in order.
	routerOrder := make([]int, 0, routers)
	for i := 0; len(routerOrder) < routers; i++ {
		g := GrayCode(i)
		if g < routers {
			routerOrder = append(routerOrder, g)
		}
		if i > 4*routers+16 {
			// All Gray codes below 2^ceil(log2(routers)) are visited
			// within that range; this is a safety bound.
			break
		}
	}
	m := make(Mapping, 0, n)
	for _, r := range routerOrder {
		for nd := 0; nd < nodesPerRouter; nd++ {
			node := r*nodesPerRouter + nd
			for p := 0; p < procsPerNode; p++ {
				proc := node*procsPerNode + p
				if proc < n {
					m = append(m, proc)
				}
			}
		}
	}
	// Processes map in order onto the Gray-ordered processor list.
	out := make(Mapping, n)
	copy(out, m)
	return out
}

// SplitPairs maps processes so that the two processors of each node hold
// processes n/2 apart (process i and i+n/2 share a node). Used in Section
// 7.1's FFT experiments to keep transpose partners off-node.
func SplitPairs(n int) Mapping {
	m := make(Mapping, n)
	half := n / 2
	for i := 0; i < half; i++ {
		m[i] = 2 * i
		m[i+half] = 2*i + 1
	}
	if n%2 == 1 {
		m[n-1] = n - 1
	}
	return m
}
