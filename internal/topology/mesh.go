package topology

import "fmt"

// Mesh is a 2D mesh interconnect: routers sit on a near-square w×h grid
// (row-major, the last row possibly partial) and packets use XY
// dimension-order routing, so the hop count between two routers is their
// Manhattan distance. There are no shared crossing resources — every link
// is a point-to-point router hop — which makes the mesh the "all wire, no
// metarouter" counterpoint to the Origin fabric: its diameter grows as
// O(sqrt(n)) instead of O(log n), stretching the remote-latency tail that
// the paper identifies as the machine-side scaling limiter.
type Mesh struct {
	numRouters int
	w, h       int // grid width and height, w*h >= numRouters
}

var _ Network = (*Mesh)(nil)

// NewMesh builds a near-square 2D mesh for the given number of routers:
// width ceil(sqrt(n)), height ceil(n/width).
func NewMesh(numRouters int) *Mesh {
	if numRouters < 1 {
		numRouters = 1
	}
	w := 1
	for w*w < numRouters {
		w++
	}
	h := (numRouters + w - 1) / w
	return &Mesh{numRouters: numRouters, w: w, h: h}
}

// Kind identifies the 2D mesh in scenario specs.
func (m *Mesh) Kind() string { return "mesh2d" }

// Describe returns a one-line human description of the mesh.
func (m *Mesh) Describe() string {
	return fmt.Sprintf("%dx%d 2D mesh (XY routing)", m.w, m.h)
}

// NumRouters reports the number of routers in the mesh.
func (m *Mesh) NumRouters() int { return m.numRouters }

// NumMetarouters is always 0: a mesh has no shared crossing resources.
func (m *Mesh) NumMetarouters() int { return 0 }

func (m *Mesh) pos(r int) (x, y int) { return r % m.w, r / m.w }

// Route computes the XY dimension-order route from router a to router b;
// the hop count is the Manhattan distance and no metarouter is crossed.
func (m *Mesh) Route(a, b int) Route {
	ax, ay := m.pos(a)
	bx, by := m.pos(b)
	return Route{Hops: abs(ax-bx) + abs(ay-by), Meta: -1}
}

// Hops is shorthand for Route(a, b).Hops.
func (m *Mesh) Hops(a, b int) int { return m.Route(a, b).Hops }

// MaxHops returns the mesh diameter: the Manhattan distance between the
// far corners of the occupied grid.
func (m *Mesh) MaxHops() int {
	if m.h == 1 {
		return m.numRouters - 1
	}
	// Routers (w-1, 0) and (0, h-1) always exist when h >= 2, and no pair
	// of occupied positions is farther apart.
	return (m.w - 1) + (m.h - 1)
}

// AverageHops returns the mean hop count over ordered pairs with a != b.
func (m *Mesh) AverageHops() float64 { return averageHops(m) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
