package topology

import "fmt"

// Network is the interconnect contract every fabric implementation serves.
// A network connects NumRouters routers (plus, optionally, NumMetarouters
// shared crossing resources — the Origin's metarouters, a fat-tree's
// spines) and answers deterministic routing queries between them. The
// machine model charges per-hop wire latency for Route.Hops and occupancy
// on the shared crossing resource when Route.Meta >= 0, so two networks
// with the same hop counts but different crossing structure load the
// simulated machine differently.
//
// Implementations must be deterministic pure functions of (a, b): the
// engines replay routes during checkpoint resume proofs and across the
// serial/parallel engines, and any route asymmetry in Hops would break
// bit-identity. Meta may be asymmetric (the Origin picks the crossing by
// the source router's index) — only hop counts must satisfy
// Hops(a,b) == Hops(b,a) and the triangle inequality.
type Network interface {
	// Kind names the implementation ("origin", "mesh2d", "fattree",
	// "dragonfly"); it is the value a scenario spec selects by.
	Kind() string
	// Describe returns a one-line human description of the built instance.
	Describe() string
	// NumRouters reports the number of routers in the fabric.
	NumRouters() int
	// NumMetarouters reports the number of shared crossing resources.
	NumMetarouters() int
	// Route computes the deterministic route from router a to router b.
	Route(a, b int) Route
	// Hops is shorthand for Route(a, b).Hops.
	Hops(a, b int) int
	// MaxHops returns the network diameter in link traversals.
	MaxHops() int
	// AverageHops returns the mean hop count over ordered pairs with a != b.
	AverageHops() float64
}

// Fabric is the "origin" Network implementation.
var _ Network = (*Fabric)(nil)

// Kind identifies the hypercube+metarouter fabric in scenario specs.
func (f *Fabric) Kind() string { return "origin" }

// Describe returns a one-line human description of the fabric.
func (f *Fabric) Describe() string {
	if f.modules > 1 {
		return fmt.Sprintf("%d hypercube modules + %d metarouters",
			f.modules, f.NumMetarouters())
	}
	return "full hypercube"
}

// averageHops computes the mean hop count over all ordered router pairs
// with a != b for any Network; implementations share it.
func averageHops(n Network) float64 {
	total, pairs := 0, 0
	for a := 0; a < n.NumRouters(); a++ {
		for b := 0; b < n.NumRouters(); b++ {
			if a == b {
				continue
			}
			total += n.Hops(a, b)
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}
