package topology

import (
	"fmt"
	"testing"
)

// networksUnderTest builds every Network implementation at a range of
// router counts, paired with its analytically expected diameter.
func networksUnderTest() []struct {
	n        Network
	diameter int
} {
	var out []struct {
		n        Network
		diameter int
	}
	add := func(n Network, diameter int) {
		out = append(out, struct {
			n        Network
			diameter int
		}{n, diameter})
	}
	// Origin hypercube+metarouter fabric: diameter dims for a single
	// hypercube, 2+3 with metarouter modules.
	add(NewFabric(1), 0)
	add(NewFabric(8), 3)
	add(NewFabric(16), 4) // 64-processor machine: full 4-cube
	add(NewFabric(24), 5) // 96 processors: 3 modules + metarouters
	add(NewFabric(32), 5) // 128 processors: 4 modules + metarouters
	add(NewFabricModules(16, true), 5)
	// 2D mesh: Manhattan diameter of the near-square occupied grid.
	add(NewMesh(1), 0)
	add(NewMesh(3), 2)  // 2x2 grid, 3 occupied: (1,0)..(0,1)
	add(NewMesh(16), 6) // 4x4
	add(NewMesh(23), 8) // 5x5, last row partial
	add(NewMesh(32), 10)
	// Fat-tree: 4 hops across pods, 2 within a single pod.
	add(NewFatTree(1, 4), 0)
	add(NewFatTree(4, 4), 2)
	add(NewFatTree(16, 4), 4)
	add(NewFatTree(18, 4), 4) // partial last pod
	add(NewFatTree(32, 8), 4)
	// Dragonfly: 3 hops across groups, 1 within a single group.
	add(NewDragonfly(1, 4), 0)
	add(NewDragonfly(4, 4), 1)
	add(NewDragonfly(32, 4), 3)
	return out
}

// TestNetworkPropertyRouteSymmetry: hop counts must be symmetric — the
// cost of a→b equals b→a for every implementation (Meta may differ; the
// crossing is chosen by the source).
func TestNetworkPropertyRouteSymmetry(t *testing.T) {
	for _, tc := range networksUnderTest() {
		n := tc.n
		name := fmt.Sprintf("%s/%d", n.Kind(), n.NumRouters())
		for a := 0; a < n.NumRouters(); a++ {
			for b := 0; b < n.NumRouters(); b++ {
				if n.Hops(a, b) != n.Hops(b, a) {
					t.Fatalf("%s: Hops(%d,%d)=%d but Hops(%d,%d)=%d",
						name, a, b, n.Hops(a, b), b, a, n.Hops(b, a))
				}
			}
			if h := n.Hops(a, a); h != 0 {
				t.Fatalf("%s: Hops(%d,%d)=%d, want 0", name, a, a, h)
			}
		}
	}
}

// TestNetworkPropertyTriangleInequality: routing must be metric — going
// through any intermediate router never beats the direct route.
func TestNetworkPropertyTriangleInequality(t *testing.T) {
	for _, tc := range networksUnderTest() {
		n := tc.n
		if n.NumRouters() > 32 {
			continue // O(n^3); all sizes under test are <= 32
		}
		name := fmt.Sprintf("%s/%d", n.Kind(), n.NumRouters())
		for a := 0; a < n.NumRouters(); a++ {
			for b := 0; b < n.NumRouters(); b++ {
				for c := 0; c < n.NumRouters(); c++ {
					if n.Hops(a, c) > n.Hops(a, b)+n.Hops(b, c) {
						t.Fatalf("%s: Hops(%d,%d)=%d > Hops(%d,%d)+Hops(%d,%d)=%d",
							name, a, c, n.Hops(a, c), a, b, b, c,
							n.Hops(a, b)+n.Hops(b, c))
					}
				}
			}
		}
	}
}

// TestNetworkPropertyDiameter: MaxHops must match the analytical diameter
// and actually be attained (and never exceeded) by some router pair.
func TestNetworkPropertyDiameter(t *testing.T) {
	for _, tc := range networksUnderTest() {
		n := tc.n
		name := fmt.Sprintf("%s/%d", n.Kind(), n.NumRouters())
		if n.MaxHops() != tc.diameter {
			t.Fatalf("%s: MaxHops()=%d, want analytical diameter %d",
				name, n.MaxHops(), tc.diameter)
		}
		worst := 0
		for a := 0; a < n.NumRouters(); a++ {
			for b := 0; b < n.NumRouters(); b++ {
				if h := n.Hops(a, b); h > worst {
					worst = h
				}
			}
		}
		if worst != tc.diameter {
			t.Fatalf("%s: observed max hops %d, want diameter %d",
				name, worst, tc.diameter)
		}
	}
}

// TestNetworkPropertyDeclaredResources: every route must reference only
// resources the fabric declared — a crossing index in [0, NumMetarouters)
// or -1, and nonzero hops between distinct routers.
func TestNetworkPropertyDeclaredResources(t *testing.T) {
	for _, tc := range networksUnderTest() {
		n := tc.n
		name := fmt.Sprintf("%s/%d", n.Kind(), n.NumRouters())
		for a := 0; a < n.NumRouters(); a++ {
			for b := 0; b < n.NumRouters(); b++ {
				r := n.Route(a, b)
				if r.Meta < -1 || r.Meta >= n.NumMetarouters() {
					t.Fatalf("%s: Route(%d,%d).Meta=%d outside declared [-1,%d)",
						name, a, b, r.Meta, n.NumMetarouters())
				}
				if a != b && r.Hops < 1 {
					t.Fatalf("%s: Route(%d,%d).Hops=%d, want >= 1", name, a, b, r.Hops)
				}
				if r.Hops > n.MaxHops() {
					t.Fatalf("%s: Route(%d,%d).Hops=%d exceeds MaxHops %d",
						name, a, b, r.Hops, n.MaxHops())
				}
			}
		}
	}
}

// TestNetworkDescribe: Describe and AverageHops are well-formed for every
// implementation (AverageHops bounded by the diameter).
func TestNetworkDescribe(t *testing.T) {
	for _, tc := range networksUnderTest() {
		n := tc.n
		if n.Describe() == "" {
			t.Fatalf("%s/%d: empty Describe()", n.Kind(), n.NumRouters())
		}
		if avg := n.AverageHops(); avg < 0 || avg > float64(n.MaxHops()) {
			t.Fatalf("%s/%d: AverageHops()=%v outside [0,%d]",
				n.Kind(), n.NumRouters(), avg, n.MaxHops())
		}
	}
}
