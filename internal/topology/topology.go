// Package topology models the SGI Origin2000 interconnect of the paper's
// Figure 1: two processors share a node (Hub), two nodes share a router,
// routers form a hypercube, and machines beyond 16 routers (64 processors)
// are built from 8-router hypercube modules whose corresponding routers are
// joined through shared metarouters.
package topology

import "math/bits"

// ModuleRouters is the number of routers in one hypercube module of a
// metarouter-based machine (a 32-processor module: 16 nodes, 8 routers).
const ModuleRouters = 8

// Fabric describes a router interconnect and answers routing queries.
type Fabric struct {
	numRouters int
	modules    int // 1 for a plain hypercube machine
	dims       int // hypercube dimensions within a module
}

// NewFabric builds the interconnect for the given number of routers.
// Up to 16 routers it is a single (full) hypercube, as on the paper's
// 32- and 64-processor machines. Beyond that it is ceil(n/8) 8-router
// modules connected by 8 metarouters, as on the 96/128-processor machine.
func NewFabric(numRouters int) *Fabric {
	return NewFabricModules(numRouters, false)
}

// NewFabricModules optionally forces the metarouter organization even at
// router counts a full hypercube could serve — the paper's Section 7.1
// compares 64-processor machines with and without metarouters.
func NewFabricModules(numRouters int, forceMeta bool) *Fabric {
	if numRouters < 1 {
		numRouters = 1
	}
	f := &Fabric{numRouters: numRouters}
	if numRouters <= 16 && !(forceMeta && numRouters > ModuleRouters) {
		f.modules = 1
		f.dims = ceilLog2(numRouters)
	} else {
		f.modules = (numRouters + ModuleRouters - 1) / ModuleRouters
		f.dims = 3
	}
	return f
}

func ceilLog2(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}

// NumRouters reports the number of routers in the fabric.
func (f *Fabric) NumRouters() int { return f.numRouters }

// NumModules reports the number of hypercube modules (1 when no
// metarouters are present).
func (f *Fabric) NumModules() int { return f.modules }

// HasMetarouters reports whether inter-module traffic crosses metarouters.
func (f *Fabric) HasMetarouters() bool { return f.modules > 1 }

// NumMetarouters reports the number of shared metarouters (0 or 8).
func (f *Fabric) NumMetarouters() int {
	if f.modules > 1 {
		return ModuleRouters
	}
	return 0
}

func (f *Fabric) split(r int) (module, index int) {
	if f.modules == 1 {
		return 0, r
	}
	return r / ModuleRouters, r % ModuleRouters
}

// Route describes the path between two routers.
type Route struct {
	// Hops is the number of router-to-router link traversals.
	Hops int
	// Meta is the metarouter index crossed, or -1 for intra-module routes.
	Meta int
}

// Route computes the deterministic route from router a to router b.
// Intra-module routes use dimension-order hypercube routing (hop count is
// the Hamming distance). Inter-module routes leave the source module
// immediately through the metarouter matching the source router's index,
// then route within the destination module.
func (f *Fabric) Route(a, b int) Route {
	ma, ia := f.split(a)
	mb, ib := f.split(b)
	if ma == mb {
		return Route{Hops: bits.OnesCount(uint(ia ^ ib)), Meta: -1}
	}
	// Source router -> metarouter(ia) -> same-index router in the target
	// module -> hypercube hops to the destination index.
	return Route{Hops: 2 + bits.OnesCount(uint(ia^ib)), Meta: ia}
}

// Hops is shorthand for Route(a, b).Hops.
func (f *Fabric) Hops(a, b int) int { return f.Route(a, b).Hops }

// MaxHops returns the network diameter in link traversals.
func (f *Fabric) MaxHops() int {
	if f.modules == 1 {
		return f.dims
	}
	return 2 + f.dims
}

// AverageHops returns the mean hop count over all ordered router pairs with
// a != b, a measure used to calibrate the remote-latency constants.
func (f *Fabric) AverageHops() float64 {
	total, pairs := 0, 0
	for a := 0; a < f.numRouters; a++ {
		for b := 0; b < f.numRouters; b++ {
			if a == b {
				continue
			}
			total += f.Hops(a, b)
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}

// GrayCode returns the i-th binary-reflected Gray code. Consecutive codes
// differ in one bit, so laying out neighbouring partitions along the Gray
// sequence of router indices puts them one hop apart in the hypercube.
func GrayCode(i int) int { return i ^ (i >> 1) }
