package topology

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestHypercubeHopsAreHammingDistance(t *testing.T) {
	f := NewFabric(16) // 64-processor machine: full 4-cube
	if f.HasMetarouters() {
		t.Fatal("16-router fabric should not use metarouters")
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			want := bits.OnesCount(uint(a ^ b))
			if got := f.Hops(a, b); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	if f.MaxHops() != 4 {
		t.Errorf("diameter = %d, want 4", f.MaxHops())
	}
}

func TestMetarouterFabric128(t *testing.T) {
	f := NewFabric(32) // 128-processor machine: 4 modules of 8 routers
	if f.NumModules() != 4 || !f.HasMetarouters() || f.NumMetarouters() != 8 {
		t.Fatalf("modules=%d metarouters=%d", f.NumModules(), f.NumMetarouters())
	}
	// Intra-module: plain 3-cube.
	if got := f.Hops(0, 7); got != 3 {
		t.Errorf("intra-module Hops(0,7) = %d, want 3", got)
	}
	// Inter-module, same index: exactly the metarouter crossing.
	r := f.Route(3, 8+3)
	if r.Hops != 2 || r.Meta != 3 {
		t.Errorf("Route(3,11) = %+v, want Hops=2 Meta=3", r)
	}
	// Inter-module, different index: crossing plus in-module distance.
	r = f.Route(0, 8+7)
	if r.Hops != 5 || r.Meta != 0 {
		t.Errorf("Route(0,15) = %+v, want Hops=5 Meta=0", r)
	}
	if f.MaxHops() != 5 {
		t.Errorf("diameter = %d, want 5", f.MaxHops())
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	fabrics := []*Fabric{NewFabric(8), NewFabric(16), NewFabric(24), NewFabric(32)}
	f := func(a, b uint8) bool {
		for _, fab := range fabrics {
			x := int(a) % fab.NumRouters()
			y := int(b) % fab.NumRouters()
			if fab.Hops(x, y) != fab.Hops(y, x) {
				return false
			}
			if x == y && fab.Hops(x, y) != 0 {
				return false
			}
			if x != y && fab.Hops(x, y) <= 0 {
				return false
			}
			if fab.Hops(x, y) > fab.MaxHops() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAverageHopsGrowsWithScale(t *testing.T) {
	small := NewFabric(8).AverageHops()
	large := NewFabric(32).AverageHops()
	if small <= 0 || large <= small {
		t.Errorf("average hops small=%.2f large=%.2f; want growth", small, large)
	}
}

func TestMappingsArePermutations(t *testing.T) {
	for _, n := range []int{2, 32, 64, 96, 128} {
		cases := map[string]Mapping{
			"linear":       Linear(n),
			"random":       Random(n, 42),
			"pairedRandom": PairedRandom(n, 42),
			"grayPairs":    GrayPairs(n, 2, 2),
			"splitPairs":   SplitPairs(n),
		}
		for name, m := range cases {
			if len(m) != n || !m.Valid() {
				t.Errorf("%s(%d) is not a permutation: %v", name, n, m)
			}
		}
	}
}

func TestPairedRandomKeepsPairsTogether(t *testing.T) {
	m := PairedRandom(64, 7)
	for i := 0; i < 64; i += 2 {
		if m[i]/2 != m[i+1]/2 {
			t.Errorf("processes %d,%d map to different nodes: %d,%d", i, i+1, m[i], m[i+1])
		}
	}
}

func TestSplitPairsSeparatesTransposePartners(t *testing.T) {
	n := 64
	m := SplitPairs(n)
	for i := 0; i < n/2; i++ {
		if m[i]/2 != m[i+n/2]/2 {
			t.Errorf("process %d and %d should share a node", i, i+n/2)
		}
		if i > 0 && m[i]/2 == m[i-1]/2 {
			t.Errorf("neighbouring processes %d,%d should not share a node", i-1, i)
		}
	}
}

func TestGrayPairsNeighboursAreClose(t *testing.T) {
	// With Gray ordering, consecutive process pairs sit on routers one
	// hop apart inside a hypercube module.
	n := 64
	f := NewFabric(16)
	m := GrayPairs(n, 2, 2)
	far := 0
	for i := 0; i+2 < n; i += 2 {
		ra := m[i] / 4 // 2 procs/node, 2 nodes/router
		rb := m[i+2] / 4
		if ra != rb && f.Hops(ra, rb) > 1 {
			far++
		}
	}
	if far > n/8 {
		t.Errorf("%d of %d neighbour pairs are more than one hop apart", far, n/2-1)
	}
}

func TestGrayCode(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		g := GrayCode(i)
		if seen[g] {
			t.Fatalf("GrayCode not injective at %d", i)
		}
		seen[g] = true
		if i > 0 {
			diff := GrayCode(i) ^ GrayCode(i-1)
			if bits.OnesCount(uint(diff)) != 1 {
				t.Errorf("consecutive Gray codes %d,%d differ in more than one bit", i-1, i)
			}
		}
	}
}
