package trace

import (
	"fmt"
	"os"
	"path/filepath"
)

// Failure flight recorder: when a checked experiment or a golden-output
// test fails, CI re-runs the scenario with tracing enabled and uploads the
// Perfetto trace as an artifact, so every red build ships the event stream
// that explains it.

// ArtifactEnv is the environment variable naming the directory failure
// traces are written to. Empty (unset) disables artifact capture.
const ArtifactEnv = "ORIGIN_TRACE_ARTIFACTS"

// ArtifactDir reports the failure-artifact directory, or "" when capture is
// off.
func ArtifactDir() string { return os.Getenv(ArtifactEnv) }

// WriteArtifact writes the tracer's Perfetto trace to
// dir/<name>.perfetto.json (creating dir) and returns the path.
func WriteArtifact(dir, name string, t *Tracer) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".perfetto.json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := t.WritePerfetto(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// CaptureArtifact re-runs a failing scenario with tracing enabled and
// writes its Perfetto trace to the ArtifactDir. run receives the trace
// options to install on the re-run's machine and returns that machine's
// tracer. It is a no-op returning ("", nil) when artifact capture is off;
// callers log the returned path. The re-run is deterministic, so the
// captured trace is the failing execution, not an approximation of it.
func CaptureArtifact(name string, run func(Options) (*Tracer, error)) (string, error) {
	dir := ArtifactDir()
	if dir == "" {
		return "", nil
	}
	t, err := run(Options{Enabled: true, Lossless: true})
	if err != nil && t == nil {
		return "", fmt.Errorf("trace: artifact re-run %s: %w", name, err)
	}
	if t == nil {
		return "", fmt.Errorf("trace: artifact re-run %s returned no tracer", name)
	}
	return WriteArtifact(dir, name, t)
}
