package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"origin2000/internal/sim"
)

func TestCaptureArtifactDisabledIsNoOp(t *testing.T) {
	t.Setenv(ArtifactEnv, "")
	called := false
	path, err := CaptureArtifact("x", func(Options) (*Tracer, error) {
		called = true
		return nil, nil
	})
	if path != "" || err != nil || called {
		t.Errorf("disabled capture: path=%q err=%v called=%v", path, err, called)
	}
}

func TestCaptureArtifactWritesDecodableTrace(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(ArtifactEnv, dir)
	path, err := CaptureArtifact("fft-golden-p4", func(o Options) (*Tracer, error) {
		if !o.Enabled || !o.Lossless {
			t.Errorf("re-run options not lossless-enabled: %+v", o)
		}
		tr := New(2, o)
		tr.Miss(0, 0, 500*sim.Nanosecond, 1<<7, 1, 3, 0, 2, EvMissRemoteClean)
		// The scenario failing is the normal case; a non-nil tracer must
		// still be written.
		return tr, errors.New("checksum mismatch")
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "fft-golden-p4.perfetto.json"); path != want {
		t.Errorf("path = %q, want %q", path, want)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	streams, err := DecodePerfetto(f)
	if err != nil {
		t.Fatalf("artifact does not decode: %v", err)
	}
	if len(streams) != 2 || len(streams[0]) != 1 {
		t.Errorf("artifact streams wrong: %d procs, %d events", len(streams), len(streams[0]))
	}
}

func TestCaptureArtifactErrors(t *testing.T) {
	t.Setenv(ArtifactEnv, t.TempDir())
	if _, err := CaptureArtifact("x", func(Options) (*Tracer, error) {
		return nil, errors.New("rebuild failed")
	}); err == nil {
		t.Error("nil tracer + error must fail")
	}
	if _, err := CaptureArtifact("x", func(Options) (*Tracer, error) {
		return nil, nil
	}); err == nil {
		t.Error("nil tracer must fail")
	}
}
