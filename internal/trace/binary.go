package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"origin2000/internal/sim"
)

// Compact binary trace format, for round-tripping event streams in tests
// and archiving full runs cheaply: varint-encoded with per-processor
// delta-coded timestamps. Event times within one processor's stream are
// nearly sorted (waits are stamped at their start, which can precede the
// previous event's stamp), so deltas are signed.

// binaryMagic identifies the format; bump the trailing digit on change.
var binaryMagic = []byte("ORGNTRC1")

// EncodeBinary writes per-processor event streams in the compact binary
// format.
func EncodeBinary(w io.Writer, procs [][]Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		bw.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	putI := func(v int64) {
		bw.Write(buf[:binary.PutVarint(buf[:], v)])
	}
	putU(uint64(len(procs)))
	for _, evs := range procs {
		putU(uint64(len(evs)))
		var prev sim.Time
		for _, ev := range evs {
			putI(int64(ev.Time - prev))
			prev = ev.Time
			putU(uint64(ev.Dur))
			putU(ev.Addr)
			putI(int64(ev.Arg))
			putI(int64(ev.Node))
			bw.WriteByte(byte(ev.Kind))
		}
	}
	return bw.Flush()
}

// DecodeBinary parses a stream written by EncodeBinary.
func DecodeBinary(r io.Reader) ([][]Event, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: binary decode: %w", err)
	}
	if string(magic) != string(binaryMagic) {
		return nil, fmt.Errorf("trace: binary decode: bad magic %q", magic)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getI := func() (int64, error) { return binary.ReadVarint(br) }
	np, err := getU()
	if err != nil {
		return nil, fmt.Errorf("trace: binary decode: %w", err)
	}
	const maxProcs = 1 << 20 // sanity bound against corrupt headers
	if np == 0 || np > maxProcs {
		return nil, fmt.Errorf("trace: binary decode: implausible proc count %d", np)
	}
	procs := make([][]Event, np)
	for p := range procs {
		n, err := getU()
		if err != nil {
			return nil, fmt.Errorf("trace: binary decode: proc %d: %w", p, err)
		}
		capHint := n
		if capHint > 1<<16 { // don't trust a corrupt count with one big alloc
			capHint = 1 << 16
		}
		evs := make([]Event, 0, capHint)
		var prev sim.Time
		for i := uint64(0); i < n; i++ {
			var ev Event
			dt, err := getI()
			if err != nil {
				return nil, fmt.Errorf("trace: binary decode: proc %d event %d: %w", p, i, err)
			}
			ev.Time = prev + sim.Time(dt)
			prev = ev.Time
			d, err := getU()
			if err != nil {
				return nil, err
			}
			ev.Dur = sim.Time(d)
			if ev.Addr, err = getU(); err != nil {
				return nil, err
			}
			arg, err := getI()
			if err != nil {
				return nil, err
			}
			ev.Arg = int32(arg)
			node, err := getI()
			if err != nil {
				return nil, err
			}
			ev.Node = int16(node)
			k, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			if k >= uint8(numKinds) {
				return nil, fmt.Errorf("trace: binary decode: unknown event kind %d", k)
			}
			ev.Kind = Kind(k)
			evs = append(evs, ev)
		}
		procs[p] = evs
	}
	return procs, nil
}

// WriteBinary exports the tracer's surviving event streams in the compact
// binary format.
func (t *Tracer) WriteBinary(w io.Writer) error {
	return EncodeBinary(w, t.AllEvents())
}
