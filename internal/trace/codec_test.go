package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"origin2000/internal/sim"
)

// sampleStreams builds a deterministic multi-processor event mix covering
// every kind, zero-duration events, out-of-order stamps (a wait recorded at
// its start can precede the previous event's stamp), and an empty stream.
func sampleStreams() [][]Event {
	procs := make([][]Event, 4)
	for i := 0; i < 64; i++ {
		p := i % 3 // proc 3 stays empty
		procs[p] = append(procs[p], mkEvent(i*17))
	}
	// Non-monotonic timestamps within one stream.
	procs[1] = append(procs[1],
		Event{Time: 5 * sim.Microsecond, Dur: sim.Microsecond, Addr: 1, Kind: EvSyncWait},
		Event{Time: 2 * sim.Microsecond, Dur: 0, Addr: 2, Node: 3, Kind: EvInvalRecv},
	)
	return procs
}

// eqStreams compares decoded streams to the original, treating nil and
// empty as equal (the decoder leaves untouched procs nil).
func eqStreams(a, b [][]Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestPerfettoRoundTripByteIdentical(t *testing.T) {
	procs := sampleStreams()
	var first bytes.Buffer
	if err := ExportPerfetto(&first, procs); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePerfetto(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !eqStreams(procs, decoded) {
		t.Fatal("decoded event streams differ from the originals")
	}
	var second bytes.Buffer
	if err := ExportPerfetto(&second, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("decode -> re-encode is not byte-identical")
	}
}

func TestPerfettoIsValidJSONWithExpectedTracks(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, sampleStreams()); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	evs, ok := f["traceEvents"].([]any)
	if !ok || len(evs) == 0 {
		t.Fatal("no traceEvents array")
	}
	// One process_name + one thread_name per proc.
	meta := 0
	for _, e := range evs {
		if e.(map[string]any)["ph"] == "M" {
			meta++
		}
	}
	if meta != 1+4 {
		t.Errorf("got %d metadata records, want 5", meta)
	}
	if !strings.Contains(buf.String(), "\"displayTimeUnit\":\"ns\"") {
		t.Error("missing displayTimeUnit header")
	}
}

func TestPerfettoQueueEventsEmitCounterTracks(t *testing.T) {
	procs := [][]Event{{
		{Time: sim.Microsecond, Dur: 100 * sim.Nanosecond, Node: 3, Kind: EvHubQueue},
	}}
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, procs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"hub3 delay (ns)\"") {
		t.Error("hub queue event did not emit its counter sample")
	}
	// The derived counter line must be skipped on decode.
	decoded, err := DecodePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded[0]) != 1 {
		t.Errorf("decoded %d events, want 1 (counter sample must not decode)", len(decoded[0]))
	}
}

func TestPerfettoDecodeRejectsForeignAndCorrupt(t *testing.T) {
	if _, err := DecodePerfetto(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Error("decode accepted a trace without the tool header")
	}
	if _, err := DecodePerfetto(strings.NewReader(`not json`)); err == nil {
		t.Error("decode accepted invalid JSON")
	}
	bad := `{"otherData":{"tool":"origin2000-trace/1","procs":"1"},` +
		`"traceEvents":[{"ph":"X","tid":7,"args":{"k":0}}]}`
	if _, err := DecodePerfetto(strings.NewReader(bad)); err == nil {
		t.Error("decode accepted an out-of-range tid")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	procs := sampleStreams()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, procs); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !eqStreams(procs, decoded) {
		t.Fatal("binary round-trip lost or altered events")
	}
	// Deterministic: same input, same bytes.
	var again bytes.Buffer
	if err := EncodeBinary(&again, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("binary re-encode is not byte-identical")
	}
}

func TestBinaryDecodeRejectsCorrupt(t *testing.T) {
	if _, err := DecodeBinary(strings.NewReader("BADMAGIC")); err == nil {
		t.Error("decode accepted a bad magic")
	}
	if _, err := DecodeBinary(strings.NewReader("")); err == nil {
		t.Error("decode accepted an empty stream")
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, sampleStreams()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinary(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("decode accepted a truncated stream")
	}
}

func TestTracerAttributionTables(t *testing.T) {
	tr := New(2, Options{Enabled: true})
	// Page 1 takes the remote traffic; page 2 only local misses.
	tr.Miss(0, 0, 500*sim.Nanosecond, 1<<7, 1, 3, 2, 4, EvMissRemoteDirty)
	tr.Miss(0, 1, 400*sim.Nanosecond, 1<<7, 1, 3, 0, 2, EvMissRemoteClean)
	tr.Miss(1, 2, 300*sim.Nanosecond, 2<<7, 2, 0, 0, 1, EvMissLocal)
	tr.InvalRecv(1, 3, 1<<7, 1, 0)
	tr.PageRemapped(1, 3, 0)

	pages := tr.TopPages(0)
	if len(pages) != 2 || pages[0].Key != 1 {
		t.Fatalf("page ranking wrong: %+v", pages)
	}
	top := pages[0]
	if top.RemoteDirty != 1 || top.RemoteClean != 1 || top.Interventions != 1 ||
		top.InvalsSent != 2 || top.InvalsRecv != 1 || top.Migrations != 1 ||
		top.MaxSharers != 4 || top.Stall != 900*sim.Nanosecond {
		t.Errorf("hot page stats wrong: %+v", top)
	}
	if share := tr.RemoteMissShare(1); share != 1.0 {
		t.Errorf("RemoteMissShare(1) = %v, want 1.0 (all remote misses on one page)", share)
	}

	tr.RegisterSync(100, "lock")
	tr.RegisterSync(200, "lock")
	tr.SyncAcquire(0, 100, 10, 0)                 // uncontended
	tr.SyncAcquire(0, 100, 20, 5*sim.Microsecond) // contended
	tr.SyncWait(1, 200, 30, sim.Microsecond)
	syncs := tr.TopSync(0)
	if len(syncs) != 2 || syncs[0].Label != "lock#0" {
		t.Fatalf("sync ranking wrong: %+v", syncs)
	}
	if syncs[0].Acquires != 2 || syncs[0].Waits != 1 || syncs[0].TotalWait != 5*sim.Microsecond {
		t.Errorf("lock#0 stats wrong: %+v", syncs[0])
	}

	if h := tr.LatencyHist(LatRemoteDirty); h.Count() != 1 {
		t.Errorf("remote-dirty latency count = %d", h.Count())
	}
	for _, rows := range [][][]string{
		tr.PageReport(5), tr.BlockReport(5), tr.SyncReport(5), tr.LatencyReport(),
	} {
		if len(rows) < 2 {
			t.Errorf("report has no data rows: %v", rows)
		}
	}
}

func TestRankHeatDeterministicTieBreak(t *testing.T) {
	m := map[uint64]*HeatStat{
		5: {RemoteClean: 2, Stall: 10},
		3: {RemoteClean: 2, Stall: 10},
		9: {RemoteClean: 7},
	}
	got := rankHeat(m)
	want := []uint64{9, 3, 5}
	for i, h := range got {
		if h.Key != want[i] {
			t.Fatalf("rank %d = %#x, want %#x", i, h.Key, want[i])
		}
	}
	if !reflect.DeepEqual([]uint64{got[0].Key, got[1].Key, got[2].Key}, want) {
		t.Fatal("ordering unstable")
	}
}
