package trace

import (
	"fmt"

	"origin2000/internal/sim"
)

// Kind is the type tag of one traced event.
type Kind uint8

// Event kinds. The comment on each kind documents how the Event fields are
// used; unused fields are zero.
const (
	// EvMissLocal is a demand miss satisfied by the local node's memory.
	// Addr=block, Node=home, Dur=miss latency, Arg=invalidations sent.
	EvMissLocal Kind = iota
	// EvMissRemoteClean is a 2-hop miss satisfied by a remote home memory.
	EvMissRemoteClean
	// EvMissRemoteDirty is a 3-hop miss requiring an intervention at the
	// exclusive owner's cache.
	EvMissRemoteDirty
	// EvUpgrade is a write hit on a Shared line obtaining ownership.
	// Addr=block, Node=home, Dur=latency, Arg=invalidations sent.
	EvUpgrade
	// EvPrefetch is a software prefetch issue. Addr=block, Node=home,
	// Dur=fill latency (overlapped with execution, not stall).
	EvPrefetch
	// EvFetchOp is an uncached at-memory fetch&op. Addr=block, Node=home,
	// Dur=operation latency.
	EvFetchOp
	// EvWriteback is a dirty victim written back to its home.
	// Addr=block, Node=home.
	EvWriteback
	// EvInvalRecv is recorded on the victim processor's stream when its
	// cached copy is invalidated. Addr=block, Node=requesting processor.
	EvInvalRecv
	// EvIntervention is recorded on the previous exclusive owner's stream
	// when the home forwards an intervention to it. Addr=block,
	// Node=requesting processor, Arg=1 for a write (ownership transfer),
	// 0 for a read (downgrade to Shared).
	EvIntervention
	// EvPageMigration is a dynamic page migration triggered by this
	// processor's remote miss. Addr=page, Node=new home, Arg=old home.
	EvPageMigration
	// EvSyncWait is one wait episode at a barrier (or other blocking
	// primitive). Addr=sync object id, Time=arrival, Dur=wait span.
	EvSyncWait
	// EvSyncAcquire is one contended lock acquisition. Addr=sync object
	// id, Time=request, Dur=request-to-grant span.
	EvSyncAcquire
	// EvHubQueue is a transaction queueing behind earlier traffic at a Hub.
	// Node=hub (node) id, Dur=queueing delay, Time=arrival.
	EvHubQueue
	// EvMemQueue is queueing at a memory/directory controller.
	EvMemQueue
	// EvRouterQueue is queueing at a router endpoint.
	EvRouterQueue
	// EvMetaQueue is queueing at a metarouter.
	EvMetaQueue

	numKinds
)

// kindNames are the stable display names used by the exporters; tests pin
// them, so renaming a kind is a format change.
var kindNames = [numKinds]string{
	EvMissLocal:       "miss local",
	EvMissRemoteClean: "miss remote-clean",
	EvMissRemoteDirty: "miss remote-dirty",
	EvUpgrade:         "upgrade",
	EvPrefetch:        "prefetch",
	EvFetchOp:         "fetch&op",
	EvWriteback:       "writeback",
	EvInvalRecv:       "inval recv",
	EvIntervention:    "intervention",
	EvPageMigration:   "page migration",
	EvSyncWait:        "sync wait",
	EvSyncAcquire:     "lock acquire",
	EvHubQueue:        "hub queue",
	EvMemQueue:        "mem queue",
	EvRouterQueue:     "router queue",
	EvMetaQueue:       "meta queue",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one traced machine event. It is a fixed-size value with no
// pointers, so a ring of Events costs one allocation for the whole run.
type Event struct {
	// Time is the virtual time the event began (miss issue, wait arrival,
	// queue entry).
	Time sim.Time
	// Dur is the event's duration (miss latency, wait span, queueing
	// delay); zero for instantaneous events.
	Dur sim.Time
	// Addr identifies the subject: a block number, a page number, or a
	// sync object id, depending on Kind.
	Addr uint64
	// Arg is a kind-specific payload (invalidation count, old home, ...).
	Arg int32
	// Node is a kind-specific node/resource/processor id.
	Node int16
	// Kind tags the event type.
	Kind Kind
}
