package trace

import (
	"fmt"
	"sort"

	"origin2000/internal/sim"
)

// HeatStat aggregates the coherence behaviour of one page or one block —
// the per-data attribution the paper performs by hand (and Section 8 wishes
// the Origin's tools provided) built online from the event stream.
type HeatStat struct {
	LocalMisses   int64
	RemoteClean   int64
	RemoteDirty   int64
	Upgrades      int64
	InvalsSent    int64 // invalidations caused by writes to this page/block
	InvalsRecv    int64 // cached copies of this page/block invalidated
	Interventions int64 // remote-dirty interventions forwarded for it
	Migrations    int64 // page moves (dynamic migration or manual re-home)
	MaxSharers    int32 // widest sharer set observed at a miss
	SharerSum     int64 // sum of observed sharer widths (mean = /Samples)
	Samples       int64 // miss samples contributing to SharerSum
	Stall         sim.Time
}

// RemoteMisses reports the remote (clean + dirty) miss count.
func (h *HeatStat) RemoteMisses() int64 { return h.RemoteClean + h.RemoteDirty }

// Misses reports the total demand-miss count.
func (h *HeatStat) Misses() int64 { return h.LocalMisses + h.RemoteMisses() }

// MeanSharers reports the mean sharer-set width over miss samples.
func (h *HeatStat) MeanSharers() float64 {
	if h.Samples == 0 {
		return 0
	}
	return float64(h.SharerSum) / float64(h.Samples)
}

func (h *HeatStat) observe(kind Kind, stall sim.Time, invals, sharers int) {
	switch kind {
	case EvMissLocal:
		h.LocalMisses++
	case EvMissRemoteClean:
		h.RemoteClean++
	case EvMissRemoteDirty:
		h.RemoteDirty++
		h.Interventions++
	case EvUpgrade:
		h.Upgrades++
	}
	h.InvalsSent += int64(invals)
	h.Stall += stall
	if int32(sharers) > h.MaxSharers {
		h.MaxSharers = int32(sharers)
	}
	h.SharerSum += int64(sharers)
	h.Samples++
}

// add folds o into h: counters and sums are additive, extrema take the
// max. Used to merge per-shard heat buckets; every operation commutes, so
// the merged result is independent of fold order.
func (h *HeatStat) add(o *HeatStat) {
	h.LocalMisses += o.LocalMisses
	h.RemoteClean += o.RemoteClean
	h.RemoteDirty += o.RemoteDirty
	h.Upgrades += o.Upgrades
	h.InvalsSent += o.InvalsSent
	h.InvalsRecv += o.InvalsRecv
	h.Interventions += o.Interventions
	h.Migrations += o.Migrations
	if o.MaxSharers > h.MaxSharers {
		h.MaxSharers = o.MaxSharers
	}
	h.SharerSum += o.SharerSum
	h.Samples += o.Samples
	h.Stall += o.Stall
}

// Heat is one ranked heatmap entry: a page or block number plus its stats.
type Heat struct {
	Key uint64
	HeatStat
}

// rankHeat orders entries by remote misses, then total stall, then key —
// the paper's diagnostic order (remote traffic is what kills scaling).
func rankHeat(m map[uint64]*HeatStat) []Heat {
	out := make([]Heat, 0, len(m))
	for k, h := range m {
		out = append(out, Heat{Key: k, HeatStat: *h})
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].RemoteMisses(), out[j].RemoteMisses()
		if ri != rj {
			return ri > rj
		}
		if out[i].Stall != out[j].Stall {
			return out[i].Stall > out[j].Stall
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// SyncStat aggregates waiting at one synchronization object.
type SyncStat struct {
	Obj       uint64 // object id (base address of the object's first line)
	Label     string // "barrier#0", "lock#3", ... (registration order)
	Waits     int64  // blocking wait episodes
	Acquires  int64  // lock acquisitions (contended or not)
	TotalWait sim.Time
	MaxWait   sim.Time
}

func (s *SyncStat) observe(span sim.Time) {
	s.TotalWait += span
	if span > s.MaxWait {
		s.MaxWait = span
	}
}

// heatRows renders ranked heat entries as table rows (header first). keyFmt
// names the key column ("page", "block").
func heatRows(entries []Heat, keyCol string, topN int) [][]string {
	rows := [][]string{{
		keyCol, "local", "rem-clean", "rem-dirty", "upgrades",
		"inv-sent", "inv-recv", "interv", "migr", "sharers(max/mean)", "stall(ms)",
	}}
	for i, e := range entries {
		if topN > 0 && i >= topN {
			break
		}
		rows = append(rows, []string{
			fmt.Sprintf("%#x", e.Key),
			fmt.Sprint(e.LocalMisses),
			fmt.Sprint(e.RemoteClean),
			fmt.Sprint(e.RemoteDirty),
			fmt.Sprint(e.Upgrades),
			fmt.Sprint(e.InvalsSent),
			fmt.Sprint(e.InvalsRecv),
			fmt.Sprint(e.Interventions),
			fmt.Sprint(e.Migrations),
			fmt.Sprintf("%d/%.1f", e.MaxSharers, e.MeanSharers()),
			fmt.Sprintf("%.3f", e.Stall.Milliseconds()),
		})
	}
	return rows
}
