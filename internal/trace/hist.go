package trace

import (
	"math/bits"

	"origin2000/internal/sim"
)

// Histogram is a log-bucketed (HDR-style) latency histogram over sim.Time
// values. Values below 2^histSubBits land in exact unit buckets; above
// that, each power-of-two octave is split into 2^histSubBits linear
// sub-buckets, so relative error is bounded by 1/2^histSubBits everywhere.
// The bucket array is fixed-size: recording never allocates.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	sum    sim.Time
	max    sim.Time
	min    sim.Time
}

const (
	// histSubBits sets the resolution: 2^histSubBits sub-buckets per
	// octave (relative error <= 1/8 with 3 bits).
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range.
	histBuckets = (64-histSubBits)*histSub + histSub
)

// bucketOf maps a value to its bucket index. The mapping is monotone and
// contiguous: bucket boundaries are exact integers, so tests can pin them.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v))
	return (e-histSubBits)*histSub + int(v>>uint(e-histSubBits))
}

// BucketLow returns the smallest value that maps to bucket idx.
func BucketLow(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	shift := (idx - histSub) / histSub
	m := idx - shift*histSub
	return int64(m) << uint(shift)
}

// Record adds one value to the histogram.
func (h *Histogram) Record(v sim.Time) {
	h.counts[bucketOf(int64(v))]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Merge folds histogram o into h (bucket-wise addition; extrema take the
// max/min of the two). Merging commutes, so per-shard histograms combine
// into the same distribution in any order.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the total of all recorded values.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Mean returns the average recorded value (0 when empty).
func (h *Histogram) Mean() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.sum / sim.Time(h.total)
}

// Quantile returns the lower bound of the bucket containing the q-quantile
// (q in [0,1]); quantiles are therefore deterministic and conservative.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total-1))
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen > rank {
			return sim.Time(BucketLow(i))
		}
	}
	return h.max
}

// Nonzero returns the number of values recorded above zero.
func (h *Histogram) Nonzero() int64 { return h.total - h.counts[0] }

// Buckets calls fn for every non-empty bucket in ascending value order with
// the bucket's inclusive lower bound and its count.
func (h *Histogram) Buckets(fn func(low int64, count int64)) {
	for i := range h.counts {
		if h.counts[i] != 0 {
			fn(BucketLow(i), h.counts[i])
		}
	}
}
