package trace

import (
	"math"
	"testing"

	"origin2000/internal/sim"
)

// TestBucketBoundaries pins the log-bucket mapping at the exact boundary
// values: sub-unit buckets, octave edges, and the last value of each
// sub-bucket. BucketLow must be the exact inverse on bucket lower bounds.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {7, 7}, // exact unit buckets below 2^3
		{8, 8}, {9, 9}, {15, 15}, // first octave: still unit-width
		{16, 16}, {17, 16}, {18, 17}, // second octave: width-2 sub-buckets
		{31, 23},
		{32, 24}, {35, 24}, {36, 25}, // width-4 sub-buckets
		{63, 31},
		{64, 32},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := bucketOf(-5); got != 0 {
		t.Errorf("bucketOf(-5) = %d, want 0 (clamped)", got)
	}
}

func TestBucketLowIsInverse(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		low := BucketLow(idx)
		if low < 0 { // top buckets overflow int64; stop there
			break
		}
		if got := bucketOf(low); got != idx {
			t.Fatalf("bucketOf(BucketLow(%d)=%d) = %d", idx, low, got)
		}
		if low > 0 {
			if got := bucketOf(low - 1); got != idx-1 {
				t.Fatalf("bucketOf(%d) = %d, want %d (bucket %d's lower bound is exclusive below)",
					low-1, got, idx-1, idx)
			}
		}
	}
}

func TestBucketOfIsMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<16; v++ {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
}

// TestHistogramRelativeError verifies the HDR property: every recorded value
// lands in a bucket whose lower bound is within 1/8 below it.
func TestHistogramRelativeError(t *testing.T) {
	for _, v := range []int64{1, 7, 8, 100, 1234, 99999, 1 << 40} {
		low := BucketLow(bucketOf(v))
		if low > v {
			t.Errorf("BucketLow(bucketOf(%d)) = %d > value", v, low)
		}
		if float64(v-low) > math.Ceil(float64(v)/histSub) {
			t.Errorf("value %d: bucket low %d further than 1/%d relative error", v, low, histSub)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("empty histogram must report zeros")
	}
	vals := []sim.Time{10, 20, 30, 40, 1000}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Count() != 5 || h.Sum() != 1100 || h.Mean() != 220 {
		t.Errorf("count/sum/mean = %d/%d/%d", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 10 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	// Quantiles are bucket lower bounds: deterministic and conservative.
	if q := h.Quantile(0); q != sim.Time(BucketLow(bucketOf(10))) {
		t.Errorf("q0 = %d", q)
	}
	if q := h.Quantile(1); q > 1000 || q < 896 {
		t.Errorf("q1 = %d, want the bucket containing 1000", q)
	}
	if q50, q90 := h.Quantile(0.5), h.Quantile(0.9); q50 > q90 {
		t.Errorf("quantiles not monotone: p50 %d > p90 %d", q50, q90)
	}
	var total int64
	h.Buckets(func(_ int64, c int64) { total += c })
	if total != 5 {
		t.Errorf("bucket counts sum to %d", total)
	}
}
