package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"origin2000/internal/sim"
)

// Perfetto (Chrome trace-event JSON) export. A run opens directly in
// ui.perfetto.dev / chrome://tracing: one thread track per simulated
// processor carrying the event slices (misses, sync waits, queue entries as
// duration slices; instantaneous events as zero-duration slices) plus
// counter tracks sampling per-resource queueing delay.
//
// The writer is deterministic — a pure function of the per-processor event
// slices, with hand-formatted fixed-point timestamps — and every event line
// embeds its exact picosecond payload in "args", so DecodePerfetto restores
// the event slices exactly and re-encoding is byte-identical. That makes
// the JSON itself a lossless interchange format, not just a viewer feed.

// perfettoTool names the producer in the trace header (and is checked by
// the decoder as a format guard).
const perfettoTool = "origin2000-trace/1"

// pfTS renders a virtual time as the microsecond fixed-point string the
// trace-event format expects, at full picosecond precision.
func pfTS(t sim.Time) string {
	return fmt.Sprintf("%d.%06d", t/sim.Microsecond, t%sim.Microsecond)
}

// ExportPerfetto writes per-processor event streams as Chrome trace-event
// JSON. It is a pure function of procs, so decode→re-encode round-trips to
// identical bytes.
func ExportPerfetto(w io.Writer, procs [][]Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"tool\":%q,\"procs\":\"%d\"},\"traceEvents\":[\n",
		perfettoTool, len(procs))
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"origin2000\"}}")
	for p := range procs {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"cpu%d\"}}", p, p)
	}
	for p, evs := range procs {
		for _, ev := range evs {
			fmt.Fprintf(bw,
				",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":%q,\"cat\":\"machine\","+
					"\"args\":{\"k\":%d,\"t\":%d,\"d\":%d,\"a\":%d,\"g\":%d,\"n\":%d}}",
				p, pfTS(ev.Time), pfTS(ev.Dur), ev.Kind.String(),
				ev.Kind, int64(ev.Time), int64(ev.Dur), ev.Addr, ev.Arg, ev.Node)
			// Queue events also feed a per-resource counter track so
			// contention hot spots are visible without opening slices.
			switch ev.Kind {
			case EvHubQueue, EvMemQueue, EvRouterQueue, EvMetaQueue:
				fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%s,\"name\":\"%s%d delay (ns)\",\"args\":{\"ns\":%d}}",
					pfTS(ev.Time), counterPrefix(ev.Kind), ev.Node, int64(ev.Dur)/int64(sim.Nanosecond))
			}
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

func counterPrefix(k Kind) string {
	switch k {
	case EvHubQueue:
		return "hub"
	case EvMemQueue:
		return "mem"
	case EvRouterQueue:
		return "router"
	default:
		return "meta"
	}
}

// pfFile/pfEvent mirror the subset of the trace-event schema the decoder
// needs; everything else (counter samples, metadata) is derived on encode
// and therefore skipped on decode.
type pfFile struct {
	OtherData   map[string]string `json:"otherData"`
	TraceEvents []pfEvent         `json:"traceEvents"`
}

type pfEvent struct {
	Ph   string  `json:"ph"`
	Tid  int     `json:"tid"`
	Args *pfArgs `json:"args"`
}

type pfArgs struct {
	K *uint8 `json:"k"`
	T int64  `json:"t"`
	D int64  `json:"d"`
	A uint64 `json:"a"`
	G int32  `json:"g"`
	N int16  `json:"n"`
}

// DecodePerfetto parses a trace written by ExportPerfetto back into
// per-processor event streams.
func DecodePerfetto(r io.Reader) ([][]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var f pfFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trace: perfetto decode: %w", err)
	}
	if tool := f.OtherData["tool"]; tool != perfettoTool {
		return nil, fmt.Errorf("trace: perfetto decode: not an origin2000 trace (tool=%q)", tool)
	}
	n, err := strconv.Atoi(f.OtherData["procs"])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("trace: perfetto decode: bad proc count %q", f.OtherData["procs"])
	}
	procs := make([][]Event, n)
	for _, e := range f.TraceEvents {
		if e.Ph != "X" || e.Args == nil || e.Args.K == nil {
			continue // metadata or derived counter sample
		}
		if e.Tid < 0 || e.Tid >= n {
			return nil, fmt.Errorf("trace: perfetto decode: event tid %d out of range [0,%d)", e.Tid, n)
		}
		if *e.Args.K >= uint8(numKinds) {
			return nil, fmt.Errorf("trace: perfetto decode: unknown event kind %d", *e.Args.K)
		}
		procs[e.Tid] = append(procs[e.Tid], Event{
			Time: sim.Time(e.Args.T),
			Dur:  sim.Time(e.Args.D),
			Addr: e.Args.A,
			Arg:  e.Args.G,
			Node: e.Args.N,
			Kind: Kind(*e.Args.K),
		})
	}
	return procs, nil
}

// WritePerfetto exports the tracer's surviving event streams.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	return ExportPerfetto(w, t.AllEvents())
}
