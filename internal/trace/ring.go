package trace

// ring is one processor's event buffer: a fixed-size power-of-two ring.
// In the default (lossy) mode the ring overwrites its oldest events, so a
// full run keeps the most recent window at a fixed memory bound. In
// lossless mode a full ring is spilled to an ordinary slice before being
// overwritten, so no event is lost (at unbounded memory cost).
type ring struct {
	buf      []Event
	mask     uint64
	n        uint64 // events ever recorded
	spill    []Event
	lossless bool
}

func newRing(size int, lossless bool) ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	// Round up to a power of two so indexing is a mask.
	cap := 1
	for cap < size {
		cap <<= 1
	}
	return ring{buf: make([]Event, cap), mask: uint64(cap - 1), lossless: lossless}
}

// record appends one event. In lossy mode it never allocates.
func (r *ring) record(ev Event) {
	i := r.n & r.mask
	if r.lossless && r.n > 0 && i == 0 {
		// The ring is full and about to wrap: move its contents (which
		// are exactly in record order, oldest first) to the spill area.
		r.spill = append(r.spill, r.buf...)
	}
	r.buf[i] = ev
	r.n++
}

// resident reports how many events currently live in the ring buffer.
func (r *ring) resident() uint64 {
	if r.n == 0 {
		return 0
	}
	if r.lossless {
		// Everything since the last spill; the buffer has wrapped
		// ((n-1) mod size)+1 events into the current epoch.
		return ((r.n - 1) & r.mask) + 1
	}
	if size := uint64(len(r.buf)); r.n > size {
		return size
	}
	return r.n
}

// dropped reports how many events were overwritten and lost.
func (r *ring) dropped() uint64 {
	if r.lossless {
		return 0
	}
	return r.n - r.resident()
}

// events returns the surviving stream, oldest first.
func (r *ring) events() []Event {
	res := r.resident()
	out := make([]Event, 0, uint64(len(r.spill))+res)
	out = append(out, r.spill...)
	for j := r.n - res; j < r.n; j++ {
		out = append(out, r.buf[j&r.mask])
	}
	return out
}
