package trace

import (
	"testing"

	"origin2000/internal/sim"
)

func mkEvent(i int) Event {
	return Event{
		Time: sim.Time(i) * sim.Nanosecond,
		Dur:  sim.Time(i % 7),
		Addr: uint64(i * 3),
		Arg:  int32(i % 5),
		Node: int16(i % 4),
		Kind: Kind(i % int(numKinds)),
	}
}

func TestRingSizeRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultRingSize}, {-1, DefaultRingSize},
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {1000, 1024},
	} {
		r := newRing(tc.ask, false)
		if len(r.buf) != tc.want {
			t.Errorf("newRing(%d): capacity %d, want %d", tc.ask, len(r.buf), tc.want)
		}
	}
}

func TestRingWraparoundKeepsNewestWindow(t *testing.T) {
	const size, total = 8, 21
	r := newRing(size, false)
	for i := 0; i < total; i++ {
		r.record(mkEvent(i))
	}
	evs := r.events()
	if len(evs) != size {
		t.Fatalf("got %d surviving events, want %d", len(evs), size)
	}
	// The survivors must be exactly the newest `size` events, oldest first.
	for j, ev := range evs {
		want := mkEvent(total - size + j)
		if ev != want {
			t.Errorf("event %d: got %+v, want %+v", j, ev, want)
		}
	}
	if got := r.dropped(); got != total-size {
		t.Errorf("dropped = %d, want %d", got, total-size)
	}
	if got := r.n; got != total {
		t.Errorf("recorded = %d, want %d", got, total)
	}
}

func TestRingUnderfilledIsComplete(t *testing.T) {
	r := newRing(16, false)
	for i := 0; i < 5; i++ {
		r.record(mkEvent(i))
	}
	evs := r.events()
	if len(evs) != 5 || r.dropped() != 0 {
		t.Fatalf("got %d events, %d dropped; want 5, 0", len(evs), r.dropped())
	}
	for j, ev := range evs {
		if ev != mkEvent(j) {
			t.Errorf("event %d mismatch", j)
		}
	}
}

func TestRingLosslessSpillKeepsEverything(t *testing.T) {
	const size = 4
	// Cross several spill epochs and stop mid-epoch.
	for _, total := range []int{4, 5, 8, 9, 17, 31} {
		r := newRing(size, true)
		for i := 0; i < total; i++ {
			r.record(mkEvent(i))
		}
		evs := r.events()
		if len(evs) != total {
			t.Fatalf("total=%d: got %d surviving events", total, len(evs))
		}
		for j, ev := range evs {
			if ev != mkEvent(j) {
				t.Fatalf("total=%d: event %d: got %+v, want %+v", total, j, ev, mkEvent(j))
			}
		}
		if r.dropped() != 0 {
			t.Errorf("total=%d: lossless ring reports %d dropped", total, r.dropped())
		}
	}
}

func TestTracerEventAccounting(t *testing.T) {
	tr := New(2, Options{Enabled: true, RingSize: 4})
	for i := 0; i < 10; i++ {
		tr.Miss(i%2, sim.Time(i), sim.Nanosecond, 1, 0, 0, 0, 1, EvMissLocal)
	}
	if got := tr.EventsRecorded(); got != 10 {
		t.Errorf("EventsRecorded = %d, want 10", got)
	}
	if got := tr.EventsDropped(); got != 2 {
		t.Errorf("EventsDropped = %d, want 2 (two rings of 4 holding 8)", got)
	}
	if got := len(tr.AllEvents()); got != 2 {
		t.Errorf("AllEvents streams = %d, want 2", got)
	}
}
