package trace

import (
	"fmt"
	"sort"

	"origin2000/internal/sim"
)

// RingSnap is one processor's serialized event ring: the total-event
// counter, the in-buffer tail (oldest first), and the lossless spill area.
// The buffer geometry is not stored — a restored ring is rebuilt from the
// tracer's Options, and N mod the buffer size recovers the write cursor.
type RingSnap struct {
	N        uint64  `json:"n"`
	Resident []Event `json:"resident,omitempty"`
	Spill    []Event `json:"spill,omitempty"`
}

// HistBucket is one non-empty histogram bucket in a HistSnap.
type HistBucket struct {
	Idx   int   `json:"idx"`
	Count int64 `json:"count"`
}

// HistSnap is a sparse serialization of one Histogram.
type HistSnap struct {
	Buckets []HistBucket `json:"buckets,omitempty"`
	Total   int64        `json:"total"`
	Sum     sim.Time     `json:"sum"`
	Max     sim.Time     `json:"max"`
	Min     sim.Time     `json:"min"`
}

func (h *Histogram) snap() HistSnap {
	s := HistSnap{Total: h.total, Sum: h.sum, Max: h.max, Min: h.min}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Idx: i, Count: c})
		}
	}
	return s
}

func (h *Histogram) restore(s HistSnap) error {
	*h = Histogram{total: s.Total, sum: s.Sum, max: s.Max, min: s.Min}
	for _, b := range s.Buckets {
		if b.Idx < 0 || b.Idx >= histBuckets {
			return fmt.Errorf("trace: histogram bucket index %d out of range", b.Idx)
		}
		h.counts[b.Idx] = b.Count
	}
	return nil
}

// HeatEntry is one page's or block's heat record in a BucketSnap, keyed by
// page or block number.
type HeatEntry struct {
	Key  uint64   `json:"key"`
	Stat HeatStat `json:"stat"`
}

// BucketSnap is one shard's serialized attribution state. Heat maps are
// dumped in ascending key order.
type BucketSnap struct {
	Pages  []HeatEntry               `json:"pages,omitempty"`
	Blocks []HeatEntry               `json:"blocks,omitempty"`
	Lat    [NumLatClasses]HistSnap   `json:"lat"`
	Queue  [NumQueueClasses]HistSnap `json:"queue"`
}

func heatEntries(m map[uint64]*HeatStat) []HeatEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]HeatEntry, 0, len(m))
	for k, h := range m {
		out = append(out, HeatEntry{Key: k, Stat: *h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// LabelCount is one sync-label registration counter in a Snap.
type LabelCount struct {
	Label string `json:"label"`
	Count int    `json:"count"`
}

// Snap is the tracer's full serializable state. Buckets are captured (and
// restored) per shard, not merged, so a resumed run keeps recording into
// the same shard-confined structures and every merged report stays
// byte-identical to an uninterrupted run's.
type Snap struct {
	Rings   []RingSnap   `json:"rings"`
	Buckets []BucketSnap `json:"shard_buckets"`
	Syncs   []SyncStat   `json:"syncs,omitempty"`
	SyncN   []LabelCount `json:"sync_labels,omitempty"`
	Epochs  []sim.Time   `json:"epochs,omitempty"`
}

// Snap captures the tracer's state in canonical order.
func (t *Tracer) Snap() Snap {
	s := Snap{
		Rings:   make([]RingSnap, len(t.rings)),
		Buckets: make([]BucketSnap, len(t.buckets)),
		Epochs:  t.epochs,
	}
	for i := range t.rings {
		r := &t.rings[i]
		rs := RingSnap{N: r.n, Spill: r.spill}
		if res := r.resident(); res > 0 {
			rs.Resident = make([]Event, 0, res)
			for j := r.n - res; j < r.n; j++ {
				rs.Resident = append(rs.Resident, r.buf[j&r.mask])
			}
		}
		s.Rings[i] = rs
	}
	for i := range t.buckets {
		b := &t.buckets[i]
		bs := BucketSnap{Pages: heatEntries(b.pages), Blocks: heatEntries(b.blocks)}
		for c := range b.lat {
			bs.Lat[c] = b.lat[c].snap()
		}
		for c := range b.queue {
			bs.Queue[c] = b.queue[c].snap()
		}
		s.Buckets[i] = bs
	}
	if len(t.syncs) > 0 {
		s.Syncs = make([]SyncStat, 0, len(t.syncs))
		for _, st := range t.syncs {
			s.Syncs = append(s.Syncs, *st)
		}
		sort.Slice(s.Syncs, func(i, j int) bool { return s.Syncs[i].Obj < s.Syncs[j].Obj })
	}
	if len(t.syncN) > 0 {
		s.SyncN = make([]LabelCount, 0, len(t.syncN))
		for l, n := range t.syncN {
			s.SyncN = append(s.SyncN, LabelCount{Label: l, Count: n})
		}
		sort.Slice(s.SyncN, func(i, j int) bool { return s.SyncN[i].Label < s.SyncN[j].Label })
	}
	return s
}

// Restore overwrites the tracer's state from a snapshot. The tracer must
// have been created with the same Options, processor count, and shard map
// as the one that produced the snapshot (the machine rebuilds all three
// from the run's configuration before restoring).
func (t *Tracer) Restore(s Snap) error {
	if len(s.Rings) != len(t.rings) {
		return fmt.Errorf("trace: snapshot has %d rings, tracer has %d", len(s.Rings), len(t.rings))
	}
	if len(s.Buckets) != len(t.buckets) {
		return fmt.Errorf("trace: snapshot has %d shard buckets, tracer has %d",
			len(s.Buckets), len(t.buckets))
	}
	for i := range t.rings {
		r := &t.rings[i]
		rs := s.Rings[i]
		if uint64(len(rs.Resident)) > uint64(len(r.buf)) {
			return fmt.Errorf("trace: ring %d snapshot holds %d resident events, buffer holds %d",
				i, len(rs.Resident), len(r.buf))
		}
		r.n = rs.N
		r.spill = rs.Spill
		for j := range r.buf {
			r.buf[j] = Event{}
		}
		k := uint64(len(rs.Resident))
		for off, ev := range rs.Resident {
			r.buf[(rs.N-k+uint64(off))&r.mask] = ev
		}
	}
	for i := range t.buckets {
		b := &t.buckets[i]
		bs := s.Buckets[i]
		b.pages = make(map[uint64]*HeatStat, len(bs.Pages))
		for _, e := range bs.Pages {
			h := e.Stat
			b.pages[e.Key] = &h
		}
		b.blocks = make(map[uint64]*HeatStat, len(bs.Blocks))
		for _, e := range bs.Blocks {
			h := e.Stat
			b.blocks[e.Key] = &h
		}
		for c := range b.lat {
			if err := b.lat[c].restore(bs.Lat[c]); err != nil {
				return err
			}
		}
		for c := range b.queue {
			if err := b.queue[c].restore(bs.Queue[c]); err != nil {
				return err
			}
		}
	}
	t.syncs = make(map[uint64]*SyncStat, len(s.Syncs))
	for _, st := range s.Syncs {
		cp := st
		t.syncs[st.Obj] = &cp
	}
	t.syncN = make(map[string]int, len(s.SyncN))
	for _, lc := range s.SyncN {
		t.syncN[lc.Label] = lc.Count
	}
	t.epochs = s.Epochs
	return nil
}
