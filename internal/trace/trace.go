// Package trace is the simulator's virtual-time tracing and attribution
// layer: per-processor ring buffers of typed machine events (miss classes,
// synchronization waits, page migrations, queue entries) stamped with
// virtual clocks, online attribution tables (per-page/per-block sharing
// heatmaps, per-sync-object wait rankings), and log-bucketed latency
// histograms, with Chrome trace-event/Perfetto JSON and compact binary
// exporters.
//
// The tracer follows the internal/check discipline: it is gated by
// core.Config.Trace, costs nothing but nil checks when off, and — because
// recording only reads virtual clocks, never advances them — perturbs
// simulated time by exactly zero when on. Everything it records is a pure
// function of the deterministic simulation, so trace output is bit-identical
// across runs and GOMAXPROCS settings.
package trace

import (
	"fmt"
	"sort"

	"origin2000/internal/memclass"
	"origin2000/internal/sim"
)

// DefaultRingSize is the per-processor event capacity when Options.RingSize
// is zero.
const DefaultRingSize = 8192

// Options configures the tracer (carried in core.Config.Trace).
type Options struct {
	// Enabled turns tracing on. When false the machine never constructs a
	// tracer and the hot path pays only nil checks.
	Enabled bool
	// RingSize is the per-processor event capacity, rounded up to a power
	// of two (default DefaultRingSize). The ring overwrites its oldest
	// events when full unless Lossless is set.
	RingSize int
	// Lossless spills full rings to heap memory so the whole run's event
	// stream survives, at unbounded memory cost.
	Lossless bool
}

// LatClass selects an access-latency histogram. It is an alias of the
// shared miss-class enum (internal/memclass), so the tracer's histogram
// classes, the sampler's counter columns and the sharing classifier's
// miss split are one definition and cannot drift.
type LatClass = memclass.Class

// Access-latency classes (the shared taxonomy, re-exported under the
// tracer's historical names).
const (
	LatLocal       = memclass.Local
	LatRemoteClean = memclass.RemoteClean
	LatRemoteDirty = memclass.RemoteDirty
	LatUpgrade     = memclass.Upgrade
	LatFetchOp     = memclass.FetchOp
	NumLatClasses  = memclass.NumClasses
)

// QueueClass selects a queueing-delay histogram.
type QueueClass int

// Queueing-delay classes (one per shared-resource type).
const (
	QHub QueueClass = iota
	QMem
	QRouter
	QMeta
	NumQueueClasses
)

func (c QueueClass) String() string {
	switch c {
	case QHub:
		return "hub"
	case QMem:
		return "memory"
	case QRouter:
		return "router"
	case QMeta:
		return "metarouter"
	}
	return fmt.Sprintf("QueueClass(%d)", int(c))
}

// queueEventKind maps a QueueClass to its ring-event kind.
var queueEventKind = [NumQueueClasses]Kind{QHub: EvHubQueue, QMem: EvMemQueue, QRouter: EvRouterQueue, QMeta: EvMetaQueue}

// missLatClass maps a miss/upgrade event kind to its latency class.
func missLatClass(k Kind) LatClass {
	switch k {
	case EvMissRemoteClean:
		return LatRemoteClean
	case EvMissRemoteDirty:
		return LatRemoteDirty
	case EvUpgrade:
		return LatUpgrade
	}
	return LatLocal
}

// Tracer records and aggregates one machine's event stream.
//
// Recording is lock-free by shard confinement: under the windowed engine,
// phase-1 events only ever involve processors and resources of the acting
// processor's shard, and commit-phase events run serialized, so every
// mutable structure is either per-processor (the rings), per-shard (the
// heat maps and histograms, see traceBucket), or commit-only (sync stats
// and epoch marks). Readers merge the per-shard buckets in fixed shard
// order, so merged output is bit-identical at any host worker count.
type Tracer struct {
	opts  Options
	rings []ring

	shardOf []int         // processor -> bucket index (all zero until SetShards)
	buckets []traceBucket // per-shard attribution state

	syncs map[uint64]*SyncStat
	syncN map[string]int

	epochs []sim.Time
}

// traceBucket is the attribution state one shard mutates during the
// engine's parallel phase. Bucket contents are a pure function of the
// (deterministic) schedule, and every field merges commutatively — sums,
// or max for extrema — so the merged view does not depend on how work was
// spread over host workers.
type traceBucket struct {
	pages  map[uint64]*HeatStat
	blocks map[uint64]*HeatStat
	lat    [NumLatClasses]Histogram
	queue  [NumQueueClasses]Histogram
}

func newTraceBuckets(n int) []traceBucket {
	if n < 1 {
		n = 1
	}
	b := make([]traceBucket, n)
	for i := range b {
		b[i].pages = make(map[uint64]*HeatStat)
		b[i].blocks = make(map[uint64]*HeatStat)
	}
	return b
}

// New creates a tracer for procs processors (one shard until SetShards).
func New(procs int, o Options) *Tracer {
	if procs < 1 {
		procs = 1
	}
	t := &Tracer{
		opts:    o,
		rings:   make([]ring, procs),
		shardOf: make([]int, procs),
		buckets: newTraceBuckets(1),
		syncs:   make(map[uint64]*SyncStat),
		syncN:   make(map[string]int),
	}
	for i := range t.rings {
		t.rings[i] = newRing(o.RingSize, o.Lossless)
	}
	return t
}

// SetShards installs the engine's shard map: shardOf[i] is processor i's
// shard, numShards the bucket count. Must be called before any event is
// recorded; the machine wires it when it wires the engine's shards.
func (t *Tracer) SetShards(shardOf []int, numShards int) {
	copy(t.shardOf, shardOf)
	t.buckets = newTraceBuckets(numShards)
}

// NumShards reports the attribution bucket count.
func (t *Tracer) NumShards() int { return len(t.buckets) }

// Procs reports the number of per-processor event streams.
func (t *Tracer) Procs() int { return len(t.rings) }

// Options returns the tracer's configuration.
func (t *Tracer) Options() Options { return t.opts }

func (b *traceBucket) pageHeat(page uint64) *HeatStat {
	h := b.pages[page]
	if h == nil {
		h = &HeatStat{}
		b.pages[page] = h
	}
	return h
}

func (b *traceBucket) blockHeat(block uint64) *HeatStat {
	h := b.blocks[block]
	if h == nil {
		h = &HeatStat{}
		b.blocks[block] = h
	}
	return h
}

// bucket returns the attribution bucket of the processor acting in an
// event. During phase 1 the actor is always in the recording shard; during
// the commit phase any bucket would be safe, and using the actor's keeps
// the choice schedule-determined.
func (t *Tracer) bucket(proc int) *traceBucket { return &t.buckets[t.shardOf[proc]] }

// Miss records one demand miss or upgrade: kind must be EvMissLocal,
// EvMissRemoteClean, EvMissRemoteDirty or EvUpgrade. now is the issue time,
// lat the stall, invals the invalidations the transaction sent, and sharers
// the post-transition sharer-set width of the block.
func (t *Tracer) Miss(proc int, now, lat sim.Time, block, page uint64, home, invals, sharers int, kind Kind) {
	t.rings[proc].record(Event{Time: now, Dur: lat, Addr: block, Arg: int32(invals), Node: int16(home), Kind: kind})
	b := t.bucket(proc)
	b.pageHeat(page).observe(kind, lat, invals, sharers)
	b.blockHeat(block).observe(kind, lat, invals, sharers)
	b.lat[missLatClass(kind)].Record(lat)
}

// InvalRecv records that victim's cached copy of block was invalidated by
// requester's write.
func (t *Tracer) InvalRecv(victim int, now sim.Time, block, page uint64, requester int) {
	t.rings[victim].record(Event{Time: now, Addr: block, Node: int16(requester), Kind: EvInvalRecv})
	b := t.bucket(victim)
	b.pageHeat(page).InvalsRecv++
	b.blockHeat(block).InvalsRecv++
}

// Intervention records that owner received a forwarded intervention for
// block from requester (write = ownership transfer, else downgrade).
func (t *Tracer) Intervention(owner int, now sim.Time, block, page uint64, requester int, write bool) {
	var arg int32
	if write {
		arg = 1
	}
	t.rings[owner].record(Event{Time: now, Addr: block, Arg: arg, Node: int16(requester), Kind: EvIntervention})
}

// Prefetch records a software-prefetch issue with its (overlapped) fill
// latency.
func (t *Tracer) Prefetch(proc int, now, dur sim.Time, block uint64, home int) {
	t.rings[proc].record(Event{Time: now, Dur: dur, Addr: block, Node: int16(home), Kind: EvPrefetch})
}

// FetchOp records one uncached at-memory fetch&op.
func (t *Tracer) FetchOp(proc int, now, dur sim.Time, block uint64, home int) {
	t.rings[proc].record(Event{Time: now, Dur: dur, Addr: block, Node: int16(home), Kind: EvFetchOp})
	t.bucket(proc).lat[LatFetchOp].Record(dur)
}

// Writeback records a dirty victim written back to its home.
func (t *Tracer) Writeback(proc int, now sim.Time, block, page uint64, home int) {
	t.rings[proc].record(Event{Time: now, Addr: block, Node: int16(home), Kind: EvWriteback})
}

// Migration records a dynamic page migration triggered by proc's remote
// miss. (The per-page migration count is maintained by PageRemapped, which
// also sees manual re-homes.)
func (t *Tracer) Migration(proc int, now sim.Time, page uint64, from, to int) {
	t.rings[proc].record(Event{Time: now, Addr: page, Arg: int32(from), Node: int16(to), Kind: EvPageMigration})
}

// PageRemapped observes every page move — dynamic migration and overriding
// manual placement — via the page table's OnRemap hook. Page moves always
// run in the serialized commit phase (migration follows a cross-classified
// remote miss), so bucket 0 is race-free for them.
func (t *Tracer) PageRemapped(page uint64, from, to int) {
	t.buckets[0].pageHeat(page).Migrations++
}

// QueueDelay records a transaction queueing for delay behind earlier
// traffic at the given resource (ring event only; the delay distributions
// are fed by ResourceObserver, which sees every acquire).
func (t *Tracer) QueueDelay(proc int, now, delay sim.Time, class QueueClass, node int) {
	t.rings[proc].record(Event{Time: now, Dur: delay, Node: int16(node), Kind: queueEventKind[class]})
}

// ResourceObserver returns a sim.Resource observer that feeds the class's
// queueing-delay histogram from every acquisition (including zero-delay
// ones, so the distribution reflects the uncontended mass too). shard is
// the owning resource's shard (metarouters, which only cross-module — and
// therefore commit-phase — traffic touches, pass 0). The bucket is indexed
// at observation time, after the machine has installed the shard map.
func (t *Tracer) ResourceObserver(class QueueClass, node, shard int) func(at, start, occ sim.Time) {
	return func(at, start, occ sim.Time) {
		t.buckets[shard].queue[class].Record(start - at)
	}
}

// RegisterSync names a synchronization object for attribution. Objects of
// the same label are distinguished by registration order ("lock#0",
// "lock#1", ...). Registration is idempotent per object id.
func (t *Tracer) RegisterSync(obj uint64, label string) {
	if _, ok := t.syncs[obj]; ok {
		return
	}
	n := t.syncN[label]
	t.syncN[label] = n + 1
	t.syncs[obj] = &SyncStat{Obj: obj, Label: fmt.Sprintf("%s#%d", label, n)}
}

func (t *Tracer) syncStat(obj uint64) *SyncStat {
	s := t.syncs[obj]
	if s == nil {
		s = &SyncStat{Obj: obj, Label: fmt.Sprintf("sync@%#x", obj)}
		t.syncs[obj] = s
	}
	return s
}

// SyncWait records one blocking wait episode (barrier arrival-to-release,
// or any Block-based wait) at a sync object.
func (t *Tracer) SyncWait(proc int, obj uint64, start, span sim.Time) {
	t.rings[proc].record(Event{Time: start, Dur: span, Addr: obj, Kind: EvSyncWait})
	s := t.syncStat(obj)
	s.Waits++
	s.observe(span)
}

// SyncAcquire records one lock acquisition; span is the request-to-grant
// wait (zero when uncontended — counted, but not ring-recorded, so hot
// uncontended locks do not wash the ring out).
func (t *Tracer) SyncAcquire(proc int, obj uint64, start, span sim.Time) {
	s := t.syncStat(obj)
	s.Acquires++
	if span <= 0 {
		return
	}
	t.rings[proc].record(Event{Time: start, Dur: span, Addr: obj, Kind: EvSyncAcquire})
	s.Waits++
	s.observe(span)
}

// EpochMark records a phase boundary — a full-machine barrier release — at
// virtual time now. The release is computed by one deterministic processor
// (the last arriver), so the sequence of marks is a stable signature of the
// program's phase structure, usable to align runs of the same program.
func (t *Tracer) EpochMark(now sim.Time) { t.epochs = append(t.epochs, now) }

// Epochs returns the phase-boundary times recorded so far, in order.
func (t *Tracer) Epochs() []sim.Time { return t.epochs }

// Events returns processor proc's surviving event stream, oldest first.
func (t *Tracer) Events(proc int) []Event { return t.rings[proc].events() }

// AllEvents returns every processor's surviving stream, indexed by
// processor id.
func (t *Tracer) AllEvents() [][]Event {
	out := make([][]Event, len(t.rings))
	for i := range t.rings {
		out[i] = t.rings[i].events()
	}
	return out
}

// EventsRecorded reports the total number of events recorded (including
// any later overwritten).
func (t *Tracer) EventsRecorded() int64 {
	var n int64
	for i := range t.rings {
		n += int64(t.rings[i].n)
	}
	return n
}

// EventsDropped reports how many recorded events were overwritten (always
// zero in lossless mode).
func (t *Tracer) EventsDropped() int64 {
	var n int64
	for i := range t.rings {
		n += int64(t.rings[i].dropped())
	}
	return n
}

// mergedHeat folds one heat map kind across the shard buckets, in shard
// order (the fold is commutative, so the order only matters for clarity).
func (t *Tracer) mergedHeat(sel func(*traceBucket) map[uint64]*HeatStat) map[uint64]*HeatStat {
	if len(t.buckets) == 1 {
		return sel(&t.buckets[0])
	}
	out := make(map[uint64]*HeatStat)
	for i := range t.buckets {
		for k, h := range sel(&t.buckets[i]) {
			m := out[k]
			if m == nil {
				m = &HeatStat{}
				out[k] = m
			}
			m.add(h)
		}
	}
	return out
}

// TopPages returns the per-page heatmap ranked by remote misses, then
// stall. n <= 0 returns every page.
func (t *Tracer) TopPages(n int) []Heat {
	out := rankHeat(t.mergedHeat(func(b *traceBucket) map[uint64]*HeatStat { return b.pages }))
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopBlocks returns the per-block heatmap ranked like TopPages.
func (t *Tracer) TopBlocks(n int) []Heat {
	out := rankHeat(t.mergedHeat(func(b *traceBucket) map[uint64]*HeatStat { return b.blocks }))
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// RemoteMissShare reports the fraction of all recorded remote misses that
// the top-n ranked pages account for (1.0 when there are none) — the
// "can you find the offending pages" metric.
func (t *Tracer) RemoteMissShare(n int) float64 {
	var total, top int64
	for i, h := range t.TopPages(0) {
		r := h.RemoteMisses()
		total += r
		if i < n {
			top += r
		}
	}
	if total == 0 {
		return 1
	}
	return float64(top) / float64(total)
}

// TopSync returns sync objects ranked by total wait time. n <= 0 returns
// all.
func (t *Tracer) TopSync(n int) []SyncStat {
	out := make([]SyncStat, 0, len(t.syncs))
	for _, s := range t.syncs {
		out = append(out, *s)
	}
	// Rank by wait, then label for determinism.
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalWait != out[j].TotalWait {
			return out[i].TotalWait > out[j].TotalWait
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// LatencyHist returns the access-latency histogram for class c, merged
// across shards.
func (t *Tracer) LatencyHist(c LatClass) *Histogram {
	if len(t.buckets) == 1 {
		return &t.buckets[0].lat[c]
	}
	m := &Histogram{}
	for i := range t.buckets {
		m.Merge(&t.buckets[i].lat[c])
	}
	return m
}

// QueueHist returns the queueing-delay histogram for class c, merged
// across shards.
func (t *Tracer) QueueHist(c QueueClass) *Histogram {
	if len(t.buckets) == 1 {
		return &t.buckets[0].queue[c]
	}
	m := &Histogram{}
	for i := range t.buckets {
		m.Merge(&t.buckets[i].queue[c])
	}
	return m
}

// PageReport renders the top-n page heatmap as table rows (header first).
func (t *Tracer) PageReport(n int) [][]string { return heatRows(t.TopPages(n), "page", n) }

// BlockReport renders the top-n block heatmap as table rows.
func (t *Tracer) BlockReport(n int) [][]string { return heatRows(t.TopBlocks(n), "block", n) }

// SyncReport renders the top-n sync-object wait ranking as table rows.
func (t *Tracer) SyncReport(n int) [][]string {
	rows := [][]string{{"object", "waits", "acquires", "total-wait(ms)", "max-wait(ms)", "mean-wait(us)"}}
	for _, s := range t.TopSync(n) {
		mean := 0.0
		if s.Waits > 0 {
			mean = float64(s.TotalWait) / float64(s.Waits) / float64(sim.Microsecond)
		}
		rows = append(rows, []string{
			s.Label,
			fmt.Sprint(s.Waits),
			fmt.Sprint(s.Acquires),
			fmt.Sprintf("%.3f", s.TotalWait.Milliseconds()),
			fmt.Sprintf("%.3f", s.MaxWait.Milliseconds()),
			fmt.Sprintf("%.2f", mean),
		})
	}
	return rows
}

// histRow renders one histogram as a table row.
func histRow(name string, h *Histogram) []string {
	ns := func(t sim.Time) string { return fmt.Sprintf("%.0f", t.Nanoseconds()) }
	return []string{
		name,
		fmt.Sprint(h.Count()),
		ns(h.Mean()),
		ns(h.Quantile(0.50)),
		ns(h.Quantile(0.90)),
		ns(h.Quantile(0.99)),
		ns(h.Max()),
	}
}

// LatencyReport renders the access-latency distributions as table rows:
// count, mean and tail quantiles in nanoseconds per class.
func (t *Tracer) LatencyReport() [][]string {
	rows := [][]string{{"latency", "count", "mean(ns)", "p50(ns)", "p90(ns)", "p99(ns)", "max(ns)"}}
	for c := LatClass(0); c < NumLatClasses; c++ {
		h := t.LatencyHist(c)
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, histRow(c.String(), h))
	}
	return rows
}

// QueueReport renders the queueing-delay distributions as table rows. Each
// class includes every acquisition at that resource type, so the p50 shows
// how much of the traffic queued at all.
func (t *Tracer) QueueReport() [][]string {
	rows := [][]string{{"queue", "count", "mean(ns)", "p50(ns)", "p90(ns)", "p99(ns)", "max(ns)"}}
	for c := QueueClass(0); c < NumQueueClasses; c++ {
		h := t.QueueHist(c)
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, histRow(c.String(), h))
	}
	return rows
}
