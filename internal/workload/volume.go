package workload

// HeadVolume synthesizes an s^3 density volume of nested ellipsoids (air,
// skin, skull, brain, inner structure), standing in for the SPLASH-2
// 256^3 "head" dataset used by Volrend and Shear-Warp.
func HeadVolume(s int) []uint8 {
	vol := make([]uint8, s*s*s)
	fs := float64(s)
	c := fs / 2
	for z := 0; z < s; z++ {
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				dx := (float64(x) - c) / (0.45 * fs)
				dy := (float64(y) - c) / (0.40 * fs)
				dz := (float64(z) - c) / (0.42 * fs)
				rr := dx*dx + dy*dy + dz*dz
				var d uint8
				switch {
				case rr > 1:
					d = 0 // air
				case rr > 0.85:
					d = 90 // skin
				case rr > 0.70:
					d = 200 // skull
				case rr > 0.2:
					d = 60 // brain tissue
				default:
					d = 140 // inner structure
				}
				vol[(z*s+y)*s+x] = d
			}
		}
	}
	return vol
}
