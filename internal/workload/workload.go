// Package workload defines the application interface the experiment
// drivers run, plus helpers shared by the applications (deterministic
// random input generation, checksum comparison).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"origin2000/internal/core"
	"origin2000/internal/synchro"
)

// Params configures one application run.
type Params struct {
	// Size is the problem size in the application's units (Table 2).
	Size int
	// Variant selects the algorithm version; "" is the original.
	Variant string
	// Prefetch enables software prefetching of remote data (Section 6.1)
	// in the applications that implement it.
	Prefetch bool
	// Seed makes input generation deterministic.
	Seed int64
	// Steps overrides the number of timesteps/frames (0 = app default).
	Steps int
	// Lock and Barrier select the synchronization algorithms
	// (Section 6.3); zero values are the paper's defaults (LL-SC ticket
	// lock, tournament barrier).
	Lock    synchro.LockAlgorithm
	Barrier synchro.BarrierAlgorithm
}

// App is one of the study's applications.
type App interface {
	// Name returns the application's name as used in the paper.
	Name() string
	// Unit names the problem-size unit ("bodies", "points", ...).
	Unit() string
	// BasicSize returns the paper's Table 2 basic problem size.
	BasicSize() int
	// SweepSizes returns the paper-scale problem sizes swept in Figure 4,
	// in increasing order (BasicSize is among them).
	SweepSizes() []int
	// Variants lists algorithm versions, original ("") first.
	Variants() []string
	// MaxProcs bounds the processor counts with results in the paper
	// (64 for Infer and Protein, 128 otherwise).
	MaxProcs() int
	// Run builds the input, executes the program on m, and verifies the
	// output, returning a non-nil error on any failure.
	Run(m *core.Machine, p Params) error
}

// NewRand returns a deterministic RNG for input generation.
func NewRand(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// CheckClose verifies |got-want| <= tol*max(|want|, 1), for floating-point
// checksums whose summation order may differ between runs.
func CheckClose(what string, got, want, tol float64) error {
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(got-want) > tol*scale {
		return fmt.Errorf("%s: got %g, want %g (tol %g)", what, got, want, tol)
	}
	return nil
}

// CheckEqual verifies exact equality of two checksums.
func CheckEqual(what string, got, want uint64) error {
	if got != want {
		return fmt.Errorf("%s: got %#x, want %#x", what, got, want)
	}
	return nil
}

// Mix64 is a SplitMix64 step, handy for order-independent checksums.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
