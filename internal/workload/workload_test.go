package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed, different streams")
		}
	}
	if NewRand(0).Uint64() != NewRand(0).Uint64() {
		t.Fatal("zero seed must still be deterministic")
	}
}

func TestCheckClose(t *testing.T) {
	if err := CheckClose("x", 1.0000001, 1.0, 1e-6); err != nil {
		t.Errorf("within tolerance rejected: %v", err)
	}
	if err := CheckClose("x", 1.1, 1.0, 1e-6); err == nil {
		t.Error("out of tolerance accepted")
	}
	// Tolerance is relative to max(|want|, 1): tiny targets don't make
	// the test infinitely strict.
	if err := CheckClose("x", 1e-9, 0, 1e-6); err != nil {
		t.Errorf("near-zero comparison rejected: %v", err)
	}
}

func TestCheckEqual(t *testing.T) {
	if err := CheckEqual("x", 5, 5); err != nil {
		t.Error(err)
	}
	if err := CheckEqual("x", 5, 6); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestMix64AvalancheProperty(t *testing.T) {
	// Property: flipping one input bit flips roughly half the output
	// bits (SplitMix64 finalizer quality), and Mix64 is injective-ish on
	// small samples.
	f := func(x uint64, bit uint8) bool {
		y := x ^ (1 << (bit % 64))
		d := Mix64(x) ^ Mix64(y)
		n := 0
		for d != 0 {
			n += int(d & 1)
			d >>= 1
		}
		return n >= 8 && n <= 56
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeadVolumeStructure(t *testing.T) {
	const s = 32
	vol := HeadVolume(s)
	if len(vol) != s*s*s {
		t.Fatalf("volume size %d", len(vol))
	}
	// Corners are air; the center has tissue; the skull shell (200) and
	// skin (90) both occur.
	if vol[0] != 0 {
		t.Error("corner should be air")
	}
	center := vol[(s/2*s+s/2)*s+s/2]
	if center == 0 {
		t.Error("center should be tissue")
	}
	counts := map[uint8]int{}
	for _, v := range vol {
		counts[v]++
	}
	for _, d := range []uint8{0, 60, 90, 140, 200} {
		if counts[d] == 0 {
			t.Errorf("density %d missing from the head", d)
		}
	}
	// Air should dominate the bounding cube of an ellipsoid.
	if counts[0] < len(vol)/3 {
		t.Errorf("air fraction implausibly small: %d", counts[0])
	}
	if math.Abs(float64(counts[0]+counts[60]+counts[90]+counts[140]+counts[200])-float64(len(vol))) > 0 {
		t.Error("unexpected density values present")
	}
}
