// Package origin2000 is a library-level reproduction of "Scaling
// Application Performance on a Cache-coherent Multiprocessors" (Jiang &
// Singh, ISCA 1999). It bundles a deterministic CC-NUMA machine simulator
// calibrated to the 128-processor SGI Origin2000, the study's eleven
// shared-address-space applications with their restructured variants, and
// drivers that regenerate every table and figure of the paper's evaluation.
//
// Quick start:
//
//	m := origin2000.NewMachine(origin2000.Origin2000Config(64))
//	app := origin2000.App("FFT")
//	err := app.Run(m, origin2000.Params{Size: 1 << 16, Seed: 1})
//	r := m.Result()
//	fmt.Println(m.Elapsed(), r.Average())
//
// The experiment harness:
//
//	se := origin2000.NewSession(origin2000.Scale{Div: 8, CacheDiv: 8})
//	origin2000.RunExperiment("fig2", se, os.Stdout)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// reproductions of the paper's results.
package origin2000

import (
	"io"

	"origin2000/internal/core"
	"origin2000/internal/experiments"
	"origin2000/internal/perf"
	"origin2000/internal/sim"
	"origin2000/internal/synchro"
	"origin2000/internal/topology"
	"origin2000/internal/trace"
	"origin2000/internal/workload"
)

// Machine is one simulated CC-NUMA multiprocessor.
type Machine = core.Machine

// Config describes a machine instance (processors, caches, latencies,
// placement policy, topology mapping).
type Config = core.Config

// Proc is the application-facing view of one simulated processor.
type Proc = core.Proc

// Array is a simulated shared allocation.
type Array = core.Array

// Latencies holds the memory-system timing components.
type Latencies = core.Latencies

// Params configures one application run.
type Params = workload.Params

// Workload is the interface every application implements.
type Workload = workload.App

// Result summarizes a run: elapsed time, per-processor breakdowns, and
// machine event counters.
type Result = perf.Result

// Breakdown is one processor's Busy/Memory/Sync split.
type Breakdown = perf.Breakdown

// ArrayStats attributes misses and stall time to one named allocation —
// the introspection the paper's Section 8 wished the real machine had.
// Enable with Machine.EnableArrayStats before allocating.
type ArrayStats = core.ArrayStats

// PhaseBreakdown is the cross-processor time total of one phase labeled
// with Proc.SetPhase — the pixie/prof-style routine attribution the paper
// used to locate bottlenecks.
type PhaseBreakdown = core.PhaseBreakdown

// Time is a virtual time or duration in picoseconds.
type Time = sim.Time

// TraceOptions configures the virtual-time event tracer on Config.Trace:
// per-processor ring buffers (lossless when asked), Perfetto export, and
// per-page/per-sync attribution, all without moving a single virtual clock.
type TraceOptions = trace.Options

// Tracer is a machine's event tracer (Machine.Tracer, nil unless enabled).
type Tracer = trace.Tracer

// TraceEvent is one recorded virtual-time event.
type TraceEvent = trace.Event

// Scale divides problem sizes and the cache relative to the paper.
type Scale = experiments.Scale

// Session caches sequential baselines across experiments.
type Session = experiments.Session

// Mapping assigns logical processes to physical processors.
type Mapping = topology.Mapping

// Barrier is a reusable all-processor barrier.
type Barrier = synchro.Barrier

// Lock is a FIFO mutual-exclusion lock.
type Lock = synchro.Lock

// TaskPool is a distributed task queue with stealing.
type TaskPool = synchro.TaskPool

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) *Machine { return core.New(cfg) }

// Origin2000Config returns the paper's machine at the given processor
// count: 2 processors per Hub, 4MB 2-way caches, hypercube routers with
// metarouters past 64 processors, Table 1 latencies.
func Origin2000Config(procs int) Config { return core.Origin2000(procs) }

// Apps lists the study's eleven applications in the paper's order.
func Apps() []Workload { return experiments.Apps() }

// App returns the named application (e.g. "FFT", "Barnes"), or nil.
func App(name string) Workload { return experiments.AppByName(name) }

// NewSession creates an experiment session at the given scale.
func NewSession(s Scale) *Session { return experiments.NewSession(s) }

// RunExperiment regenerates one of the paper's tables or figures by name
// ("table1".."table3", "fig2".."fig10", "sec61".."sec72", or "all").
func RunExperiment(name string, se *Session, w io.Writer) error {
	return experiments.Run(name, se, w)
}

// ExperimentNames lists the runnable experiments.
func ExperimentNames() []string { return experiments.Names() }

// Synchronization constructors, exposed for programs written directly
// against the machine API.
var (
	NewBarrier  = synchro.NewBarrier
	NewLock     = synchro.NewLock
	NewTaskPool = synchro.NewTaskPool
)

// Mapping strategies from the paper's Section 7.1.
var (
	LinearMapping       = topology.Linear
	RandomMapping       = topology.Random
	GrayPairsMapping    = topology.GrayPairs
	SplitPairsMapping   = topology.SplitPairs
	PairedRandomMapping = topology.PairedRandom
)
