package origin2000

import (
	"os"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	app := App("FFT")
	if app == nil {
		t.Fatal("FFT app missing")
	}
	params := Params{Size: 1 << 12, Seed: 1}
	seq := NewMachine(Origin2000Config(1))
	if err := app.Run(seq, params); err != nil {
		t.Fatal(err)
	}
	par := NewMachine(Origin2000Config(16))
	if err := app.Run(par, params); err != nil {
		t.Fatal(err)
	}
	if par.Elapsed() >= seq.Elapsed() {
		t.Errorf("no speedup: seq %v, par %v", seq.Elapsed(), par.Elapsed())
	}
	avg := par.Result().Average()
	if avg.Total() <= 0 {
		t.Error("empty breakdown")
	}
}

func TestFacadeListsElevenApps(t *testing.T) {
	if got := len(Apps()); got != 11 {
		t.Errorf("Apps() = %d, want 11", got)
	}
	if App("Nope") != nil {
		t.Error("unknown app should be nil")
	}
}

func TestFacadeExperiment(t *testing.T) {
	se := NewSession(Scale{Div: 64, CacheDiv: 64, Procs: []int{4}})
	var sb strings.Builder
	if err := RunExperiment("table1", se, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Origin2000") {
		t.Error("table 1 output missing machine rows")
	}
	if len(ExperimentNames()) < 14 {
		t.Errorf("experiment list too short: %v", ExperimentNames())
	}
}

func TestFacadeMappingsAndSync(t *testing.T) {
	cfg := Origin2000Config(8)
	cfg.Mapping = RandomMapping(8, 1)
	m := NewMachine(cfg)
	b := NewBarrier(m, 8, 0)
	l := NewLock(m, 0)
	count := 0
	err := m.Run(func(p *Proc) {
		l.Acquire(p)
		count++
		l.Release(p)
		b.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Errorf("count = %d", count)
	}
}

// TestDocumentationShipped keeps the documentation deliverables in the tree.
func TestDocumentationShipped(t *testing.T) {
	for _, f := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
		st, err := os.Stat(f)
		if err != nil {
			t.Errorf("%s missing: %v", f, err)
			continue
		}
		if st.Size() < 1024 {
			t.Errorf("%s suspiciously small (%d bytes)", f, st.Size())
		}
	}
}
